"""Structured diagnostics and the collecting engine.

The seed compiler reported errors as bare strings (``"line 12: ..."``)
and raised on the first problem in strict mode.  Production front ends
do neither: they attach an error *code*, a severity, and a source
span to every message, and they *collect* so one run reports all
problems.  The Sasaki/Sassa systematic-debugging line of work
(PAPERS.md) argues the same for attribute grammars specifically —
anchored, machine-readable diagnostics are the debugging substrate.

:class:`Diagnostic` is the record; :class:`DiagnosticEngine` collects
them, promotes warnings under ``-Werror``, and adapts the legacy
string messages and exception types of :mod:`repro.ag` /
:mod:`repro.vhdl` into structured form so the whole pipeline can be
upgraded incrementally.
"""

import re

from .span import SourceSpan

# -- severities ---------------------------------------------------------------

NOTE = "note"
WARNING = "warning"
ERROR = "error"
FATAL = "fatal"

#: Ordering for "worst severity" comparisons.
SEVERITY_RANK = {NOTE: 0, WARNING: 1, ERROR: 2, FATAL: 3}

#: Default diagnostic codes by pipeline stage.
CODE_LEX = "LEX001"          # scanner rejected the input
CODE_PARSE = "PARSE001"      # parser rejected the token stream
CODE_SEM = "SEM001"          # semantic-rule diagnostic (MSGS attribute)
CODE_CIRC = "CIRC001"        # circular attribute dependency
CODE_EVAL = "EVAL001"        # a semantic rule raised
CODE_INTERNAL = "INT001"     # internal compiler error
CODE_BUILD = "BUILD001"      # build-driver level problem
CODE_LIB = "LIB001"          # corrupt library artifact quarantined

#: Human-readable one-liners for the SARIF rule table.
CODE_DESCRIPTIONS = {
    CODE_LEX: "input rejected by the generated scanner",
    CODE_PARSE: "input rejected by the generated LALR(1) parser",
    CODE_SEM: "semantic error reported by an attribute-grammar rule",
    CODE_CIRC: "circular attribute dependency",
    CODE_EVAL: "a semantic rule raised during attribute evaluation",
    CODE_INTERNAL: "internal compiler error",
    CODE_BUILD: "incremental build driver error",
    CODE_LIB: "corrupt design-library artifact moved to quarantine",
}


class Diagnostic:
    """One structured diagnostic.

    ``notes`` are free-text annotations; ``related`` is a list of
    ``(message, SourceSpan)`` pairs pointing at other source positions
    involved (the second declaration of a duplicate, the far end of a
    circular dependency, ...).
    """

    __slots__ = ("code", "severity", "message", "span", "notes",
                 "related")

    def __init__(self, code, severity, message, span=None, notes=(),
                 related=()):
        self.code = code
        self.severity = severity
        self.message = message
        self.span = span
        self.notes = list(notes)
        self.related = [(m, s) for m, s in related]

    # -- views -------------------------------------------------------------

    @property
    def rank(self):
        return SEVERITY_RANK.get(self.severity, SEVERITY_RANK[ERROR])

    def to_dict(self):
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = self.span.to_dict()
        if self.notes:
            out["notes"] = list(self.notes)
        if self.related:
            out["related"] = [
                {"message": m, "span": s.to_dict() if s else {}}
                for m, s in self.related
            ]
        return out

    @classmethod
    def from_dict(cls, d):
        return cls(
            d.get("code", CODE_SEM),
            d.get("severity", ERROR),
            d.get("message", ""),
            span=SourceSpan.from_dict(d.get("span")),
            notes=d.get("notes", ()),
            related=[
                (r.get("message", ""),
                 SourceSpan.from_dict(r.get("span")))
                for r in d.get("related", ())
            ],
        )

    def __str__(self):
        where = "%s: " % self.span if self.span is not None else ""
        return "%s%s[%s]: %s" % (where, self.severity, self.code,
                                 self.message)

    def __repr__(self):
        return "<Diagnostic %s>" % self


#: Legacy message shape emitted by the semantic rules:  ``line 12: ...``
#: (optionally ``line 12:5: ...``).  One regex adapts them all.
_LEGACY_RE = re.compile(r"^line (\d+)(?::(\d+))?: (.*)$", re.S)


def parse_legacy_message(text, file=None):
    """Adapt one legacy ``"line N: ..."`` string to a Diagnostic.

    Strings that do not match the legacy shape become span-less
    diagnostics anchored only to ``file``.  Messages starting with
    ``internal:`` are classified :data:`CODE_INTERNAL`.
    """
    text = str(text)
    span = SourceSpan(file=file)
    message = text
    m = _LEGACY_RE.match(text)
    if m is not None:
        line = int(m.group(1))
        column = int(m.group(2)) if m.group(2) else None
        span = SourceSpan(file=file, line=line, column=column or 1)
        message = m.group(3)
    code = CODE_SEM
    if message.startswith("internal:"):
        code = CODE_INTERNAL
    return Diagnostic(code, ERROR, message, span=span)


class DiagnosticEngine:
    """Collects diagnostics instead of raising on the first error.

    One engine per compilation (or per build).  ``werror`` promotes
    warnings to errors at emission time, so downstream consumers never
    need to know the flag existed.  ``max_errors`` caps collection the
    way production compilers do; further errors are counted but
    dropped.
    """

    def __init__(self, file=None, werror=False, max_errors=None):
        self.default_file = file
        self.werror = werror
        self.max_errors = max_errors
        self.diagnostics = []
        self.suppressed = 0

    # -- emission ----------------------------------------------------------

    def emit(self, diag):
        """Record one diagnostic (applying ``-Werror``); returns it."""
        if self.werror and diag.severity == WARNING:
            diag = Diagnostic(diag.code, ERROR,
                              diag.message + " [-Werror]",
                              span=diag.span, notes=diag.notes,
                              related=diag.related)
        if (self.max_errors is not None
                and diag.severity in (ERROR, FATAL)
                and self.error_count >= self.max_errors):
            self.suppressed += 1
            return diag
        self.diagnostics.append(diag)
        return diag

    def _make(self, severity, code, message, span, notes, related):
        if span is None:
            span = SourceSpan(file=self.default_file)
        elif span.file is None and self.default_file is not None:
            span = SourceSpan(self.default_file, span.line, span.column,
                              span.end_line, span.end_column)
        return self.emit(Diagnostic(code, severity, message, span=span,
                                    notes=notes, related=related))

    def error(self, code, message, span=None, notes=(), related=()):
        return self._make(ERROR, code, message, span, notes, related)

    def warning(self, code, message, span=None, notes=(), related=()):
        return self._make(WARNING, code, message, span, notes, related)

    def note(self, code, message, span=None, notes=(), related=()):
        return self._make(NOTE, code, message, span, notes, related)

    # -- adapters for the legacy error surface -----------------------------

    def add_messages(self, messages, file=None):
        """Adapt a list of legacy ``"line N: ..."`` strings."""
        file = file or self.default_file
        for text in messages:
            self.emit(parse_legacy_message(text, file=file))

    def add_exception(self, exc, file=None):
        """Adapt one pipeline exception into a diagnostic.

        Understands the span-carrying :class:`repro.ag.errors`
        hierarchy (ParseError/LexError line+column+file,
        CircularityError cycles) and falls back to a span-less error.
        """
        from ..ag.errors import (
            CircularityError, EvaluationError, LexError, ParseError,
        )

        file = getattr(exc, "file", None) or file or self.default_file
        line = getattr(exc, "line", None)
        column = getattr(exc, "column", None)
        span = SourceSpan(file=file, line=line, column=column)
        message = getattr(exc, "raw_message", None) or str(exc)
        if isinstance(exc, LexError):
            return self.error(CODE_LEX, message, span=span)
        if isinstance(exc, ParseError):
            return self.error(CODE_PARSE, message, span=span)
        if isinstance(exc, CircularityError):
            notes = []
            for node, attr in getattr(exc, "cycle", ()) or ():
                notes.append("on the cycle: %s.%s"
                             % (getattr(getattr(node, "symbol", None),
                                        "name", "?"), attr))
            return self.error(CODE_CIRC, str(exc), span=span,
                              notes=notes)
        if isinstance(exc, EvaluationError):
            return self.error(CODE_EVAL, str(exc), span=span)
        return self.error(CODE_INTERNAL, "%s: %s"
                          % (type(exc).__name__, exc), span=span)

    # -- queries -----------------------------------------------------------

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    def count(self, severity):
        return sum(1 for d in self.diagnostics
                   if d.severity == severity)

    @property
    def error_count(self):
        return sum(1 for d in self.diagnostics
                   if d.severity in (ERROR, FATAL))

    @property
    def warning_count(self):
        return self.count(WARNING)

    @property
    def has_errors(self):
        return self.error_count > 0

    def worst_severity(self):
        if not self.diagnostics:
            return None
        return max(self.diagnostics, key=lambda d: d.rank).severity

    def sorted(self):
        """Diagnostics in (file, line, column) order, stable."""
        def key(pair):
            i, d = pair
            span = d.span or SourceSpan()
            return span.sort_key() + (i,)

        return [d for _, d in
                sorted(enumerate(self.diagnostics), key=key)]

    def summary(self):
        """``"2 error(s), 1 warning(s)"`` — the classic tail line."""
        parts = []
        for label, n in (("error", self.error_count),
                         ("warning", self.warning_count),
                         ("note", self.count(NOTE))):
            if n:
                parts.append("%d %s(s)" % (n, label))
        if self.suppressed:
            parts.append("%d suppressed" % self.suppressed)
        return ", ".join(parts) or "no diagnostics"
