"""Span-based phase tracing with Chrome trace-event export.

Replaces the hand-rolled ``time.perf_counter()`` dicts that used to
live in :mod:`repro.vhdl.compiler` and :mod:`repro.build.driver`.  A
:class:`Tracer` records *complete* events (``ph: "X"``) via a
context-manager API::

    tracer = Tracer()
    with tracer.phase("parse", file="top.vhd"):
        tree = grammar.parse(tokens)
    tracer.write("trace.json")     # chrome://tracing / Perfetto opens it

Events are plain dicts — picklable, so fork workers in the parallel
build scheduler ship their events back to the driver, which merges
them into one trace.  Each event carries the recording process's pid
and thread id; a merged multi-worker build therefore renders as one
timeline with one row per worker, exactly what the §2.2 time-breakdown
analysis needs at build scale.

Timestamps use ``time.time()`` (epoch microseconds) so events recorded
in different processes share a clock; durations use
``time.perf_counter()`` for resolution.

Every complete event also carries a span identity (``trace_id`` /
``span_id`` / ``parent_id``) from :mod:`repro.trace.context`: a
``phase`` opens a child of the ambient span context (or starts a fresh
trace when none is active) and makes itself ambient for the body, so
nested phases — including ones recorded by forked workers that
received the pickled context — form one connected tree.
"""

import json
import os
import threading
import time
from contextlib import contextmanager

from repro.trace.context import (
    SpanContext,
    current_context,
    make_span,
    stamp,
    thread_index,
    use,
)


class Tracer:
    """Collects Chrome trace events (the `traceEvents` array)."""

    def __init__(self, pid=None):
        self.events = []
        self._pid = pid if pid is not None else os.getpid()
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    @contextmanager
    def phase(self, name, cat="phase", **args):
        """Record one complete event around the ``with`` body.

        Yields the event dict; ``dur`` (microseconds) is filled in on
        exit, so callers can read the elapsed time afterwards::

            with tracer.phase("scan") as ev: ...
            seconds = ev["dur"] / 1e6
        """
        parent = current_context()
        ctx = parent.child() if parent is not None else SpanContext()
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": time.time() * 1e6,
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": thread_index(),
        }
        stamp(event, ctx)
        if args:
            event["args"] = dict(args)
        t0 = time.perf_counter()
        try:
            with use(ctx):
                yield event
        finally:
            event["dur"] = (time.perf_counter() - t0) * 1e6
            with self._lock:
                self.events.append(event)

    def instant(self, name, cat="mark", **args):
        """Record an instant event (a vertical line in the viewer)."""
        parent = current_context()
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "p",
            "ts": time.time() * 1e6,
            "pid": os.getpid(),
            "tid": thread_index(),
        }
        if parent is not None:
            stamp(event, parent.child())
        if args:
            event["args"] = dict(args)
        with self._lock:
            self.events.append(event)
        return event

    def counter(self, name, values, cat="counter"):
        """Record a counter sample (``values``: name -> number)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "C",
            "ts": time.time() * 1e6,
            "pid": os.getpid(),
            "tid": 0,
            "args": dict(values),
        }
        with self._lock:
            self.events.append(event)
        return event

    def complete(self, name, ts_us, dur_us, cat="span", ctx=None, **args):
        """Record a retroactive complete event with explicit identity.

        For spans whose bounds were measured elsewhere (a sampled
        kernel timestep, a request's queue wait): the caller passes
        epoch-µs start, µs duration, and optionally the
        :class:`~repro.trace.context.SpanContext` naming the span.
        """
        event = make_span(name, ctx, ts_us, dur_us, cat=cat, **args)
        with self._lock:
            self.events.append(event)
        return event

    def add_events(self, events):
        """Merge events recorded elsewhere (e.g. by a fork worker)."""
        with self._lock:
            self.events.extend(dict(e) for e in events)

    # -- aggregation -------------------------------------------------------

    def _snapshot(self):
        with self._lock:
            return list(self.events)

    def phase_seconds(self):
        """Total seconds per phase name, over all merged events."""
        out = {}
        for event in self._snapshot():
            if event.get("ph") != "X":
                continue
            out[event["name"]] = (
                out.get(event["name"], 0.0) + event.get("dur", 0.0) / 1e6
            )
        return out

    def pids(self):
        """Distinct process ids that contributed events."""
        return sorted({e.get("pid") for e in self._snapshot()
                       if e.get("pid") is not None})

    def summary(self, title="profile"):
        """A per-phase wall-time table, slowest first."""
        events = self._snapshot()
        totals = {}
        counts = {}
        pids = set()
        for event in events:
            if event.get("pid") is not None:
                pids.add(event["pid"])
            if event.get("ph") == "X":
                totals[event["name"]] = (
                    totals.get(event["name"], 0.0)
                    + event.get("dur", 0.0) / 1e6
                )
                counts[event["name"]] = counts.get(event["name"], 0) + 1
        lines = ["%s: %d event(s) from %d process(es)"
                 % (title, len(events), len(pids))]
        for name in sorted(totals, key=totals.get, reverse=True):
            lines.append("  %-28s %10.3f ms  x%d"
                         % (name, totals[name] * 1e3, counts[name]))
        return "\n".join(lines)

    # -- export ------------------------------------------------------------

    def chrome(self):
        """The Chrome trace-event JSON object (a dict)."""
        with self._lock:
            events = sorted(self.events,
                            key=lambda e: e.get("ts", 0.0))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro.diag.trace"},
        }

    def to_json(self):
        return json.dumps(self.chrome(), sort_keys=True)

    def write(self, path):
        """Write the Chrome trace JSON to ``path`` (atomic rename)."""
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as f:
            f.write(self.to_json())
        os.replace(tmp, path)
        return path


def merge_traces(*event_lists):
    """One timestamp-sorted event list out of several."""
    merged = []
    for events in event_lists:
        merged.extend(events)
    merged.sort(key=lambda e: e.get("ts", 0.0))
    return merged


def load_trace(path):
    """Read a Chrome trace file back to its event list."""
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict):
        return data.get("traceEvents", [])
    return list(data)
