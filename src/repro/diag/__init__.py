"""Structured diagnostics, phase tracing, and AG observability.

Three layers, one subsystem:

- :mod:`repro.diag.diagnostic` / :mod:`repro.diag.span` /
  :mod:`repro.diag.render` — structured, source-anchored diagnostics
  (error code, severity, file/line/column span, notes, related spans)
  collected by a :class:`DiagnosticEngine` and rendered as
  caret-annotated text, JSON lines, or SARIF 2.1.0.
- :mod:`repro.diag.trace` — a span-based :class:`Tracer` with a
  context-manager API and Chrome trace-event export; fork workers in
  the parallel build ship their (picklable) events back for one merged
  timeline.
- :mod:`repro.diag.observe` — :class:`AGObserver` counters for rule
  firings, demand-memo hits/misses, and visit-sequence visits, plus
  :func:`explain_cycle` for circularity post-mortems.
"""

from .diagnostic import (
    CODE_BUILD,
    CODE_CIRC,
    CODE_EVAL,
    CODE_INTERNAL,
    CODE_LEX,
    CODE_LIB,
    CODE_PARSE,
    CODE_SEM,
    ERROR,
    FATAL,
    NOTE,
    SEVERITY_RANK,
    WARNING,
    Diagnostic,
    DiagnosticEngine,
    parse_legacy_message,
)
from .observe import AGObserver, explain_cycle
from .render import (
    FORMATS,
    render,
    render_jsonl,
    render_sarif,
    render_text,
    sarif_run,
)
from .span import SourceSpan
from .trace import Tracer, load_trace, merge_traces

__all__ = [
    "AGObserver",
    "CODE_BUILD",
    "CODE_CIRC",
    "CODE_EVAL",
    "CODE_INTERNAL",
    "CODE_LEX",
    "CODE_LIB",
    "CODE_PARSE",
    "CODE_SEM",
    "Diagnostic",
    "DiagnosticEngine",
    "ERROR",
    "FATAL",
    "FORMATS",
    "NOTE",
    "SEVERITY_RANK",
    "SourceSpan",
    "Tracer",
    "WARNING",
    "explain_cycle",
    "load_trace",
    "merge_traces",
    "parse_legacy_message",
    "render",
    "render_jsonl",
    "render_sarif",
    "render_text",
    "sarif_run",
]
