"""E6 — §4.2: implicit rules are more than half of all semantic rules.

"Our AGs for VHDL are replete with such attribute classes and Linguist
uses them to create more than half of all the rules of the AGs."
Paper numbers: 6363/8862 (72%) for the VHDL AG, 1061/2132 (50%) for
the expression AG.  We measure the same ratio for our grammars and
break the implicit rules down by kind (copy / unit / merge).
"""

from repro.vhdl.expr_grammar import expr_grammar
from repro.vhdl.grammar import principal_grammar


def implicit_breakdown(compiled):
    kinds = {"copy": 0, "unit": 0, "merge": 0, "explicit": 0}
    for prod in compiled.grammar.productions:
        for rule in compiled.rule_indices.get(prod.index, {}).values():
            kinds[rule.implicit or "explicit"] += 1
    return kinds


def collect():
    out = {}
    for compiled in (principal_grammar(), expr_grammar()):
        stats = compiled.statistics()
        out[compiled.name] = (stats, implicit_breakdown(compiled))
    return out


def test_implicit_rule_majority(benchmark):
    data = benchmark(collect)
    print()
    print("=== E6 / section 4.2: implicit semantic rules ===")
    for name, (stats, kinds) in data.items():
        total = stats.rules
        print("  %-16s %5d rules, %5d implicit (%2.0f%%)  "
              "[copy=%d unit=%d merge=%d]"
              % (name, total, stats.implicit_rules,
                 stats.implicit_fraction * 100,
                 kinds["copy"], kinds["unit"], kinds["merge"]))
    print("  paper: VHDL AG 8862 rules, 6363 implicit (72%);"
          " expr AG 2132, 1061 (50%)")

    vhdl_stats, vhdl_kinds = data["vhdl_principal"]
    expr_stats, expr_kinds = data["vhdl_expr"]
    # The §4.2 claim, reproduced:
    assert vhdl_stats.implicit_fraction > 0.5
    assert expr_stats.implicit_fraction >= 0.5
    # Copy rules dominate the implicit population ("these simple,
    # repetitive rules are often as many as half the semantic rules of
    # a large AG").
    assert vhdl_kinds["copy"] > vhdl_kinds["unit"]
    assert vhdl_kinds["copy"] > vhdl_kinds["merge"]
    benchmark.extra_info["vhdl_fraction"] = round(
        vhdl_stats.implicit_fraction, 3)
    benchmark.extra_info["expr_fraction"] = round(
        expr_stats.implicit_fraction, 3)
