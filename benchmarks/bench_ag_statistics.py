"""E2 — the §4.1 AG-statistics table.

The paper reports, for the two cascaded grammars::

                     VHDL AG   expr AG
    productions        503       160
    symbols            355       101
    attributes        3509       446
    rules(implicit)   8862(6363) 2132(1061)
    max visits           3         4

We print the identical rows for our two AGs (plus the VIF-schema AG the
footnote mentions).  Absolute sizes differ — ours is a subset compiler
in a higher-level host language — but the *structure* must match: the
principal AG several times larger than the expression AG, implicit
rules a majority, and a small bounded visit count.
"""

from repro.ag import format_table
from repro.vhdl.expr_grammar import expr_grammar
from repro.vhdl.grammar import principal_grammar
from repro.vif.schema_lang import schema_statistics

PAPER = {
    "vhdl": {"productions": 503, "symbols": 355, "attributes": 3509,
             "rules": 8862, "implicit_rules": 6363, "max_visits": 3},
    "expr": {"productions": 160, "symbols": 101, "attributes": 446,
             "rules": 2132, "implicit_rules": 1061, "max_visits": 4},
}


def collect():
    return (
        principal_grammar().statistics(),
        expr_grammar().statistics(),
        schema_statistics(),
    )


def test_ag_statistics_table(benchmark):
    vhdl, expr, schema = benchmark(collect)
    print()
    print("=== E2 / section 4.1 table: AG statistics ===")
    print(format_table([vhdl, expr, schema]))
    print()
    print("paper: VHDL AG 503/355/3509/8862(6363)/3,"
          " expr AG 160/101/446/2132(1061)/4")

    # Shape assertions against the paper's structure:
    # - the principal AG dominates the expression AG in every measure;
    assert vhdl.productions > expr.productions
    assert vhdl.symbols > expr.symbols
    assert vhdl.attributes > expr.attributes
    assert vhdl.rules > expr.rules
    # - implicit rules are "more than half of all the rules" for the
    #   principal AG (paper: 72%; expr AG: 50%);
    assert vhdl.implicit_fraction > 0.5
    assert expr.implicit_fraction >= 0.5
    # - visit counts are small and bounded, as in the paper (3 and 4);
    assert vhdl.max_visits is not None and vhdl.max_visits <= 4
    assert expr.max_visits is not None and expr.max_visits <= 4
    # - both grammars are respectable sizes ("on the order of a simple
    #   AG for Pascal" for the expression AG).
    assert vhdl.productions >= 200
    assert expr.productions >= 60

    benchmark.extra_info["vhdl"] = vhdl.as_dict()
    benchmark.extra_info["expr"] = expr.as_dict()


def test_visit_distribution(benchmark):
    """Footnote 7: 'Most symbols are only visited once; only a
    half-dozen symbols out of 355 are visited 3 times.'"""

    def distribution():
        analysis = principal_grammar().analyze()
        dist = {}
        for sym, visits in analysis.visits.items():
            dist[visits] = dist.get(visits, 0) + 1
        return dist

    dist = benchmark(distribution)
    print()
    print("=== visit-count distribution (principal AG) ===")
    for v in sorted(dist):
        print("  %d visit(s): %3d symbols" % (v, dist[v]))
    # Most symbols single-visit, a small tail with more.
    assert dist.get(1, 0) > sum(
        n for v, n in dist.items() if v > 1)
