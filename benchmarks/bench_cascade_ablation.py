"""E8 — §4.1 ablation: cascaded evaluation versus united productions.

The paper first tried "uniting the conflicting productions into a
single production" and abandoned it: "the united production(s)
constitute a special case of other productions ... and cause parsing
conflicts with them; indeed, these productions are ambiguous".

We build the united-production expression grammar they describe — one
``name ::= ID`` production feeding calls, indexes, and conversions —
and count the LALR conflicts it creates, against the cascaded design
(distinct LEF token kinds) which builds conflict-free.
"""

from repro.ag import AGSpec, ConflictError, SYN
from repro.vhdl.expr_grammar import expr_grammar


def united_grammar():
    """The rejected design: ID is one token, phrase structures merged.

    ``name ::= ID`` together with ``func_ref ::= name ( args )``,
    ``indexed ::= name ( subscripts )`` and ``conv ::= name ( expr )``
    — the exact production family of §4.1.
    """
    g = AGSpec("united_expr")
    g.terminals("ID", "NUM", "LP", "RP", "COMMA", "PLUS")
    g.attr_class("SEM", SYN, merge=lambda a, b: None, unit=None)
    for nt in ("e", "name", "func_ref", "indexed", "conv", "args",
               "arg", "subscripts"):
        g.nonterminal(nt, "SEM")
    g.set_start("e")
    prods = [
        ("e_name", "e -> name"),
        ("e_func", "e -> func_ref"),
        ("e_index", "e -> indexed"),
        ("e_conv", "e -> conv"),
        ("e_num", "e -> NUM"),
        ("e_add", "e -> e0 PLUS e1"),
        ("name_id", "name -> ID"),
        ("func_ref", "func_ref -> name LP args RP"),
        ("args_one", "args -> arg"),
        ("args_more", "args -> args0 COMMA arg"),
        ("arg_e", "arg -> e"),
        ("indexed", "indexed -> name LP subscripts RP"),
        ("subs_one", "subscripts -> e"),
        ("subs_more", "subscripts -> subscripts0 COMMA e"),
        ("conv", "conv -> name LP e RP"),
    ]
    for label, text in prods:
        g.production(label, text)
    return g


def measure():
    united = united_grammar()
    try:
        united.finish(allow_conflicts=True)
        compiled = united._finished
        conflicts = compiled.tables.conflicts
    except ConflictError as exc:  # pragma: no cover - defensive
        conflicts = exc.conflicts
        compiled = None
    cascaded = expr_grammar()
    unresolved_cascaded = [
        c for c in cascaded.tables.conflicts if c.resolution is None
    ]
    default_resolved_cascaded = [
        c for c in cascaded.tables.conflicts
        if c.resolution == "default"
    ]
    return {
        "united_conflicts": len(conflicts),
        "united_rr": sum(1 for c in conflicts
                         if c.kind == "reduce/reduce"),
        "cascaded_unresolved": len(unresolved_cascaded),
        "cascaded_default": len(default_resolved_cascaded),
        "cascaded_productions": cascaded.statistics().productions,
    }


def test_united_productions_conflict(benchmark):
    m = benchmark(measure)
    print()
    print("=== E8 / section 4.1: united productions vs cascading ===")
    print("  united-production toy grammar: %d LALR conflicts "
          "(%d reduce/reduce) — 'indeed, these productions are "
          "ambiguous'" % (m["united_conflicts"], m["united_rr"]))
    print("  cascaded expression AG: %d productions, %d unresolved "
          "conflicts, %d yacc-default resolutions"
          % (m["cascaded_productions"], m["cascaded_unresolved"],
             m["cascaded_default"]))
    # The rejected design conflicts; the shipped design does not.
    assert m["united_conflicts"] > 0
    assert m["united_rr"] > 0
    assert m["cascaded_unresolved"] == 0
    assert m["cascaded_default"] == 0
    benchmark.extra_info.update(m)
