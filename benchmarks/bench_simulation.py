"""E10 — simulation-kernel throughput.

The paper's product was a *simulator*: the compiler's output runs on
the four-module virtual machine.  This bench compiles a clocked design
once and measures kernel throughput (simulation cycles per second,
process resumptions, signal events) — the operational sanity check
behind "a complete, tested, production-quality compiler that has
compiled hundreds of thousands of lines of customer's VHDL models".
"""

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

NS = 10**6

PIPELINE = """
    entity stage is
      port ( clk : in bit; din : in integer; dout : out integer );
    end stage;
    architecture rtl of stage is
      signal hold : integer := 0;
    begin
      process (clk)
      begin
        if clk'event and clk = '1' then
          hold <= (din + 1) mod 1000;
        end if;
      end process;
      dout <= hold;
    end rtl;

    entity pipeline is end pipeline;
    architecture top of pipeline is
      component stage
        port ( clk : in bit; din : in integer; dout : out integer );
      end component;
      signal clk : bit := '0';
      signal d0 : integer := 0;
      signal d1 : integer := 0;
      signal d2 : integer := 0;
      signal d3 : integer := 0;
      signal d4 : integer := 0;
    begin
      clock : process
      begin
        clk <= not clk after 5 ns;
        wait on clk;
      end process;
      s1 : stage port map ( clk => clk, din => d0, dout => d1 );
      s2 : stage port map ( clk => clk, din => d1, dout => d2 );
      s3 : stage port map ( clk => clk, din => d2, dout => d3 );
      s4 : stage port map ( clk => clk, din => d3, dout => d4 );
      feedback : d0 <= d4;
    end top;
"""


def build():
    compiler = Compiler(strict=False)
    result = compiler.compile(PIPELINE)
    assert result.ok, result.messages[:3]
    return compiler.library


def test_simulation_throughput(benchmark):
    library = build()

    def run_window():
        sim = Elaborator(library).elaborate("pipeline")
        sim.run(until_fs=2000 * NS)  # 2 us, 200 clock edges
        return sim

    sim = benchmark(run_window)
    cycles = sim.kernel.cycles
    mean_s = benchmark.stats.stats.mean
    print()
    print("=== E10: simulation kernel throughput ===")
    print("  %d simulation cycles in 2 us of model time"
          % cycles)
    print("  %.0f cycles/second of wall time" % (cycles / mean_s))
    print("  %d signals, %d processes"
          % (len(sim.kernel.signals), len(sim.kernel.processes)))
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["cycles_per_sec"] = round(cycles / mean_s)
    # The pipeline actually pipelines: values advanced through stages.
    assert sim.value("d4") > 0
    assert cycles > 300  # clock edges plus delta cycles


def test_delta_cycle_cost(benchmark):
    """Zero-delay chains: delta-cycle machinery under stress."""
    from repro.sim import Kernel

    def deep_chain():
        k = Kernel()
        sigs = [k.signal("s%d" % i, 0) for i in range(50)]
        rt = k.rt

        def feeder():
            rt.assign(sigs[0], ((1, 0),))
            yield rt.wait([], None, None)

        def stage(i):
            def proc():
                while True:
                    yield rt.wait([sigs[i]])
                    rt.assign(sigs[i + 1], ((rt.read(sigs[i]), 0),))

            return proc

        k.process("feeder", feeder)
        for i in range(len(sigs) - 1):
            k.process("st%d" % i, stage(i))
        k.run()
        return k

    k = benchmark(deep_chain)
    assert k.signals[-1].value == 1
    assert k.now == 0  # everything happened in delta cycles


def test_metrics_overhead(benchmark):
    """Telemetry cost: the same window with a live MetricsRegistry vs
    the null registry.  The disabled path must be effectively free
    (it is the default for every kernel) and the enabled path cheap
    enough to leave on in CI — design target <= 5%, asserted loosely
    so a noisy host cannot flake the suite."""
    import time

    from repro.metrics import NULL_REGISTRY, MetricsRegistry
    from repro.sim import Kernel

    library = build()

    def window(metrics):
        kernel = Kernel(metrics=metrics)
        sim = Elaborator(library, kernel=kernel).elaborate("pipeline")
        sim.run(until_fs=2000 * NS)
        return kernel

    def best_of(metrics_fn, repeats=5):
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            window(metrics_fn())
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
        return best

    benchmark(window, NULL_REGISTRY)
    off = best_of(lambda: NULL_REGISTRY)
    on = best_of(MetricsRegistry)
    overhead = on / off - 1.0
    print()
    print("=== metrics overhead (enabled vs null registry) ===")
    print("  disabled %.4fs   enabled %.4fs   overhead %+.1f%%"
          % (off, on, overhead * 100))
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 1)
    # Design target is <=5%; assert with generous slack for CI noise.
    assert overhead < 0.30, "metrics overhead %.1f%%" % (overhead * 100)
