"""E9 — §5.2: the monolithic-AG problem.

"An attribute evaluator generator such as Linguist contains some
expensive, non-linear algorithms buried in it.  This means that if AG1
is twice as large as AG2 then AG1 will need more than twice as much
time to be processed."

We generate families of grammars of scaled size and time the full
generator pipeline (implicit-rule completion, LALR table construction,
ordered-AG analysis), confirming super-linear growth — the reason the
paper wanted to decompose AGs and found cascading the only workable
split.
"""

import time

from repro.ag import AGSpec, SYN, INH


def make_grammar(n_statements):
    """A statement-language AG scaled by its statement count: each
    statement kind brings its own productions, attributes, and rules —
    the way a real language grammar grows."""
    g = AGSpec("scaled_%d" % n_statements)
    g.terminals("ID", "NUM", "SEMI", "LP", "RP")
    kw = []
    for i in range(n_statements):
        t = "KW%d" % i
        g.terminals(t)
        kw.append(t)
    g.attr_class("MSGS", SYN, merge=lambda a, b: a + b, unit=())
    g.attr_class("ENV", INH)
    g.nonterminal("prog", "MSGS", "ENV")
    g.nonterminal("stmts", "MSGS", "ENV")
    g.nonterminal("stmt", "MSGS", "ENV", ("CODE", SYN))
    g.production("prog", "prog -> stmts")
    g.production("stmts_empty", "stmts ->")
    g.production("stmts_more", "stmts -> stmts0 stmt")
    for i in range(n_statements):
        nt = "b%d_body" % i
        g.nonterminal(nt, "MSGS", "ENV", ("VAL", SYN))
        p = g.production("stmt_%d" % i, "stmt -> KW%d %s SEMI" % (i, nt))
        p.rule("stmt.CODE", "%s.VAL" % nt, fn=lambda v: v)
        p = g.production("b%d_body_id" % i, "%s -> ID" % nt)
        p.rule("%s.VAL" % nt, "ID.text", fn=lambda t: t)
        p = g.production("b%d_body_num" % i, "%s -> NUM" % nt)
        p.rule("%s.VAL" % nt, "NUM.value", fn=lambda v: v)
        # Bodies can nest *any* statement — the couplings between
        # productions are what make the generator's algorithms
        # non-linear (lookahead relations and induced dependencies
        # span the whole grammar).
        p = g.production("b%d_body_nest" % i,
                         "%s -> LP stmt RP" % nt)
        p.rule("%s.VAL" % nt, "stmt.CODE", fn=lambda v: v)
    return g


def generate(n):
    g = make_grammar(n)
    compiled = g.finish()
    compiled.analyze()  # dependency + ordered-AG phases included
    return compiled


def test_generator_time_superlinear(benchmark):
    def measure():
        rows = []
        for n in (8, 16, 32, 64):
            best = None
            prods = 0
            for _ in range(3):  # min-of-3 to tame timing noise
                t0 = time.perf_counter()
                compiled = generate(n)
                dt = time.perf_counter() - t0
                prods = compiled.statistics().productions
                best = dt if best is None else min(best, dt)
            rows.append((n, prods, best))
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)
    print()
    print("=== E9 / section 5.2: generator cost vs AG size ===")
    print("  %6s %12s %12s %14s" % ("kinds", "productions",
                                    "time", "ms/production"))
    for n, prods, dt in rows:
        print("  %6d %12d %9.1f ms %11.3f ms"
              % (n, prods, dt * 1e3, dt * 1e3 / prods))
    # Doubling the grammar more than doubles generation time (the
    # paper's phrasing verbatim): compare first and last per-production
    # cost.
    first = rows[0][2] / rows[0][1]
    last = rows[-1][2] / rows[-1][1]
    print("  per-production cost grew %.1fx from %d to %d productions"
          % (last / first, rows[0][1], rows[-1][1]))
    # 4x the productions (16 -> 64 statement kinds) costs far more
    # than 4x the time when the buried algorithms are non-linear.
    assert rows[-1][2] > 4.5 * rows[1][2], (
        "quadrupling the AG should much more than quadruple "
        "generation time")
    benchmark.extra_info["per_production_growth"] = round(
        last / first, 2)


def test_monolithic_regeneration_cost(benchmark):
    """§5.2's practical pain: any change regenerates the whole
    evaluator.  One full principal-AG generation, timed."""
    import repro.vhdl.grammar as G

    def regenerate():
        # Bypass the cache: build a fresh AGSpec like a recompile.
        g = AGSpec("vhdl_principal_rebuild")
        G._declare_vocabulary(g)
        G._soup_productions(g)
        G._decl_productions(g)
        G._stmt_productions(g)
        G._cstmt_productions(g)
        G._unit_productions(g)
        return g.finish()

    compiled = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    stats = compiled.statistics()
    print()
    print("  full principal-AG regeneration: %d productions, "
          "%d states" % (stats.productions,
                         compiled.tables.n_states))
    assert stats.productions > 200
