"""Tracing cost: the kernel with span tracing disabled vs enabled.

The causal-tracing layer (``repro.trace``) instruments the hottest
loop in the system — the simulation kernel's run loop — so its
disabled path must be indistinguishable from no instrumentation at
all: one hoisted bool test per cycle, one attribute test per process
resume.  Design target <=2% overhead with ``trace=None`` (the default
for every kernel); asserted loosely so a noisy CI host cannot flake
the suite.  The deterministic span-count and connectivity invariants
are pinned exactly (they cannot flake).
"""

import time

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

NS = 10**6

PIPELINE = """
    entity stage is
      port ( clk : in bit; din : in integer; dout : out integer );
    end stage;
    architecture rtl of stage is
      signal hold : integer := 0;
    begin
      process (clk)
      begin
        if clk'event and clk = '1' then
          hold <= (din + 1) mod 1000;
        end if;
      end process;
      dout <= hold;
    end rtl;

    entity pipeline is end pipeline;
    architecture top of pipeline is
      component stage
        port ( clk : in bit; din : in integer; dout : out integer );
      end component;
      signal clk : bit := '0';
      signal d0 : integer := 0;
      signal d1 : integer := 0;
      signal d2 : integer := 0;
    begin
      clock : process
      begin
        clk <= not clk after 5 ns;
        wait on clk;
      end process;
      s1 : stage port map ( clk => clk, din => d0, dout => d1 );
      s2 : stage port map ( clk => clk, din => d1, dout => d2 );
      feedback : d0 <= d2;
    end top;
"""


def build():
    compiler = Compiler(strict=False)
    result = compiler.compile(PIPELINE)
    assert result.ok, result.messages[:3]
    return compiler.library


def window(library, trace=None, trace_sample=1):
    from repro.sim import Kernel

    kernel = Kernel(trace=trace, trace_sample=trace_sample)
    sim = Elaborator(library, kernel=kernel).elaborate("pipeline")
    sim.run(until_fs=2000 * NS)
    return kernel


def test_disabled_tracing_overhead(benchmark):
    """trace=None must cost nothing measurable (<=2% design target)."""
    from repro.diag.trace import Tracer
    from repro.trace import SpanContext, use

    library = build()
    benchmark(window, library)

    def best_of(run, repeats=7):
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            run()
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
        return best

    off = best_of(lambda: window(library))

    def traced():
        with use(SpanContext()):
            window(library, trace=Tracer())

    on = best_of(traced)
    overhead = on / off - 1.0
    print()
    print("=== tracing overhead (kernel run loop) ===")
    print("  disabled %.4fs   per-cycle spans %.4fs   "
          "enabled-vs-disabled %+.1f%%" % (off, on, overhead * 100))
    benchmark.extra_info["disabled_s"] = round(off, 6)
    benchmark.extra_info["enabled_s"] = round(on, 6)
    benchmark.extra_info["enabled_overhead_pct"] = round(
        overhead * 100, 1)
    # The committed gate for the <=2% disabled-path target is the
    # bench-check 'trace' scenario (normalized_cost_disabled pins the
    # same number the untraced simulation scenario always had).  Here
    # we only assert the *enabled* path stays sane: full per-cycle
    # span recording may cost real time, but not an order of
    # magnitude.
    assert overhead < 9.0, "tracing overhead %.1f%%" % (overhead * 100)


def test_sampled_tracing_is_cheap(benchmark):
    """A 1-in-100 sample (the serve default) is near the noise floor."""
    from repro.diag.trace import Tracer
    from repro.trace import SpanContext, use

    library = build()
    tracers = []

    def sampled():
        tracer = Tracer()
        tracers.append(tracer)
        with use(SpanContext()):
            return window(library, trace=tracer, trace_sample=100)

    kernel = benchmark(sampled)
    spans = [e for e in tracers[-1].events if e["ph"] == "X"]
    # ~1/100th of the cycles + resumes, never zero (cycle 0 records).
    assert spans
    total_resumes = sum(p.resumes for p in kernel.processes)
    bound = (kernel.cycles // 100 + 1) + (total_resumes // 100 + 1)
    assert len(spans) <= bound, (len(spans), bound)
    benchmark.extra_info["sampled_spans"] = len(spans)


def test_enabled_spans_form_one_tree():
    """Every per-cycle span parents into the activated root context."""
    from repro.diag.trace import Tracer
    from repro.trace import SpanContext, use

    library = build()
    tracer = Tracer()
    root = SpanContext()
    with use(root):
        kernel = window(library, trace=tracer, trace_sample=1)

    spans = [e for e in tracer.events if e["ph"] == "X"]
    timesteps = [e for e in spans if e["name"] == "timestep"]
    resumes = [e for e in spans if e["name"] == "process_resume"]
    assert len(timesteps) == kernel.cycles
    total_resumes = sum(p.resumes for p in kernel.processes)
    assert len(resumes) == total_resumes
    ids = {e["span_id"] for e in spans}
    for event in spans:
        assert event["trace_id"] == root.trace_id
        # Parent is another recorded span or the root context itself.
        assert (event["parent_id"] in ids
                or event["parent_id"] == root.span_id)
