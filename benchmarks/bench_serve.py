"""Throughput and latency of the ``repro serve`` daemon.

The service's reason to exist is amortization: a long-lived process
keeps the generated translator and per-session work libraries hot, so
a request costs one job, not one cold CLI start (grammar generation
plus library load plus compile).  Two numbers matter:

- sustained request throughput (rps) under a concurrent mixed burst
  with 8 in-flight clients, and its p50/p95 per-request latency;
- the amortization ratio: served compile+sim round-trips versus the
  equivalent one-shot CLI invocations in a fresh subprocess.

Results land in ``BENCH_serve.json`` via ``benchmark.extra_info``
(harvested by conftest); the *committed*
``benchmarks/BENCH_serve.json`` regression baseline is the
deterministic ``repro bench-check`` serve scenario, not this module.
"""

import http.client
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import BackgroundServer

N_CLIENTS = 8
N_REQUESTS = 32  # per benchmark round, spread over the clients

PIPELINE = """
    entity stage is
      port ( clk : in bit; din : in integer; dout : out integer );
    end stage;
    architecture rtl of stage is
    begin
      process (clk)
      begin
        if clk = '1' then
          dout <= din + 1;
        end if;
      end process;
    end rtl;

    entity bench_top is end bench_top;
    architecture top of bench_top is
      component stage
        port ( clk : in bit; din : in integer; dout : out integer );
      end component;
      signal clk : bit := '0';
      signal d0 : integer := 0;
      signal d1 : integer := 0;
    begin
      clock : process
      begin
        clk <= not clk after 5 ns;
        wait on clk;
      end process;
      s1 : stage port map ( clk => clk, din => d0, dout => d1 );
      feedback : d0 <= d1;
    end top;
"""


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2, batch_window=0.005) as handle:
        # Prime one session per client so sims have a design.
        for i in range(N_CLIENTS):
            status, data = request(
                handle.port, "POST", "/compile",
                {"session": "c%d" % i,
                 "files": [{"name": "pipe.vhd", "text": PIPELINE}]})
            assert status == 200 and data["ok"], data
        yield handle


def percentile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1,
                       (len(ordered) * q) // 100)]


def test_mixed_burst_throughput(benchmark, server):
    """N_CLIENTS concurrent clients firing sim + healthz requests."""
    port = server.port
    jobs = []
    for n in range(N_REQUESTS):
        sid = "c%d" % (n % N_CLIENTS)
        if n % 4 == 3:
            jobs.append(("GET", "/healthz", None))
        else:
            jobs.append(("POST", "/sim",
                         {"session": sid, "top": "bench_top",
                          "until": "200ns"}))

    def burst():
        latencies = []

        def one(job):
            method, path, body = job
            t0 = time.perf_counter()
            status, data = request(port, method, path, body)
            latencies.append(time.perf_counter() - t0)
            assert status == 200, data
            return data
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            results = list(pool.map(one, jobs))
        return time.perf_counter() - t0, latencies, results

    wall, latencies, results = benchmark(burst)
    sims = [r for r in results if r.get("kind") == "sim"]
    assert sims and all(r["ok"] for r in sims)

    benchmark.extra_info["clients"] = N_CLIENTS
    benchmark.extra_info["requests"] = N_REQUESTS
    benchmark.extra_info["rps"] = round(N_REQUESTS / wall, 1)
    benchmark.extra_info["p50_ms"] = round(
        percentile(latencies, 50) * 1e3, 3)
    benchmark.extra_info["p95_ms"] = round(
        percentile(latencies, 95) * 1e3, 3)
    benchmark.extra_info["sim_cycles"] = sims[0]["cycles"]


def test_batched_compile_amortization(benchmark, server):
    """K clients posting distinct files at once: the batch layer must
    hand the scheduler one merged build, not K serial ones."""
    port = server.port
    counter = {"round": 0}

    def burst():
        counter["round"] += 1
        tag = counter["round"]

        def one(i):
            # Fresh file names each round force real compiles; one
            # shared session so concurrent posts can merge batches.
            name = "gen_r%d_c%d.vhd" % (tag, i)
            text = ("entity g_r%d_c%d is end g_r%d_c%d;\n"
                    % (tag, i, tag, i))
            status, data = request(
                port, "POST", "/compile",
                {"session": "batchbench",
                 "files": [{"name": name, "text": text}]})
            assert status == 200 and data["ok"], data
            return data
        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            return list(pool.map(one, range(N_CLIENTS)))

    results = benchmark(burst)
    benchmark.extra_info["clients"] = N_CLIENTS
    benchmark.extra_info["compiles_per_round"] = len(results)
    benchmark.extra_info["max_batch_jobs"] = max(
        r["timing"]["batch_jobs"] for r in results)
