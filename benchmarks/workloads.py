"""Deterministic synthetic VHDL workloads for the benchmarks.

The paper's compiler was measured on "hundreds of thousands of lines of
customer's VHDL models" we obviously do not have; these generators
produce design files with a realistic construct mix (packages, entities
with generics and ports, architectures with processes, concurrent
assignments, and component instantiations, plus configuration units)
at controllable sizes — the substitution recorded in DESIGN.md §4.
"""


def gen_package(name, n_constants=6, n_functions=3):
    lines = ["package %s is" % name]
    for i in range(n_constants):
        lines.append("  constant k%d_%s : integer := %d;"
                     % (i, name, i * 3 + 1))
    lines.append("  type %s_state is (s0_%s, s1_%s, s2_%s);"
                 % (name, name, name, name))
    for i in range(n_functions):
        lines.append(
            "  function f%d_%s (x : integer) return integer;"
            % (i, name))
    lines.append("end %s;" % name)
    lines.append("package body %s is" % name)
    for i in range(n_functions):
        lines.append(
            "  function f%d_%s (x : integer) return integer is"
            % (i, name))
        lines.append("  begin")
        lines.append("    return x * %d + k%d_%s;"
                     % (i + 2, i % n_constants, name))
        lines.append("  end f%d_%s;" % (i, name))
    lines.append("end %s;" % name)
    return "\n".join(lines) + "\n"


def gen_entity_arch(name, n_processes=3, n_signals=4, pkg=None,
                    stmts_per_process=6):
    lines = []
    if pkg:
        lines.append("use work.%s.all;" % pkg)
    lines.append("entity %s is" % name)
    lines.append("  generic ( width : integer := 8 );")
    lines.append("  port ( clk : in bit; rst : in bit;"
                 " dout : out integer );")
    lines.append("end %s;" % name)
    lines.append("architecture rtl of %s is" % name)
    for i in range(n_signals):
        lines.append("  signal s%d : integer := %d;" % (i, i))
    lines.append("  signal acc : integer := 0;")
    lines.append("  function step (x : integer; y : integer)"
                 " return integer is")
    lines.append("  begin")
    lines.append("    if x > y then")
    lines.append("      return x - y;")
    lines.append("    end if;")
    lines.append("    return x + y;")
    lines.append("  end step;")
    lines.append("begin")
    for p in range(n_processes):
        src = p % n_signals
        dst = (p + 1) % n_signals
        lines.append("  p%d : process (clk)" % p)
        lines.append("    variable v : integer := 0;")
        lines.append("  begin")
        lines.append("    if clk'event and clk = '1' then")
        for s in range(stmts_per_process):
            lines.append("      v := step(v, s%d + %d);" % (src, s))
        lines.append("      if rst = '1' then")
        lines.append("        v := 0;")
        lines.append("      end if;")
        lines.append("      s%d <= v mod width;" % dst)
        lines.append("    end if;")
        lines.append("  end process;")
    lines.append("  acc <= s0 + s%d;" % (n_signals - 1))
    lines.append("  dout <= acc;")
    lines.append("end rtl;")
    return "\n".join(lines) + "\n"


def gen_structural(name, leaf, n_instances=4):
    """An architecture instantiating ``leaf`` several times."""
    lines = ["entity %s is" % name, "end %s;" % name]
    lines.append("architecture struct of %s is" % name)
    lines.append("  component %s" % leaf)
    lines.append("    generic ( width : integer := 8 );")
    lines.append("    port ( clk : in bit; rst : in bit;"
                 " dout : out integer );")
    lines.append("  end component;")
    lines.append("  signal clk : bit := '0';")
    lines.append("  signal rst : bit := '0';")
    for i in range(n_instances):
        lines.append("  signal d%d : integer := 0;" % i)
    lines.append("begin")
    lines.append("  clock : process")
    lines.append("  begin")
    lines.append("    clk <= not clk after 5 ns;")
    lines.append("    wait on clk;")
    lines.append("  end process;")
    for i in range(n_instances):
        lines.append(
            "  u%d : %s generic map ( width => %d )"
            " port map ( clk => clk, rst => rst, dout => d%d );"
            % (i, leaf, 4 + i, i))
    lines.append("end struct;")
    return "\n".join(lines) + "\n"


def gen_configuration(name, top, arch, labels, leaf_entity, leaf_arch):
    lines = ["configuration %s of %s is" % (name, top)]
    lines.append("  for %s" % arch)
    for label in labels:
        lines.append("    for %s : %s use entity work.%s(%s);"
                     % (label, leaf_entity, leaf_entity, leaf_arch))
        lines.append("    end for;")
    lines.append("  end for;")
    lines.append("end %s;" % name)
    return "\n".join(lines) + "\n"


def gen_design(n_packages=2, n_units=4, n_processes=3):
    """A multi-unit design file with packages and behavioral units."""
    parts = []
    for i in range(n_packages):
        parts.append(gen_package("pkg%d" % i))
    for i in range(n_units):
        parts.append(gen_entity_arch(
            "unit%d" % i, n_processes=n_processes,
            pkg="pkg%d" % (i % n_packages) if n_packages else None))
    return "\n".join(parts)


def count_lines(text):
    """Figure 2's counting convention: no blanks, no comments."""
    return sum(
        1 for line in text.splitlines()
        if line.strip() and not line.strip().startswith("--")
    )
