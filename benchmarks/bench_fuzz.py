"""Throughput of the generative conformance harness.

Two rates matter for sizing CI sweeps:

- pure *generation* speed (designs/sec off the decision tape) — the
  ceiling of the whole pipeline, and what the reducer pays per
  candidate before the oracle even runs;
- full *generate+check* speed (compile + lint + both-kernel
  differential simulation per design) — what a `repro fuzz` budget
  actually costs.

Results land in ``bench-out/BENCH_fuzz.json`` via
``benchmark.extra_info`` (harvested by conftest); the *committed*
``benchmarks/BENCH_fuzz.json`` regression baseline is the
deterministic ``repro bench-check`` fuzz scenario, not this module.
"""

from repro.gen import generate_for
from repro.gen.runner import run_sweep

SEED = 7
GEN_BUDGET = 200
CHECK_BUDGET = 12


def test_generation_throughput(benchmark):
    """Tape-to-source rendering only — no oracle."""

    def generate():
        return [generate_for(SEED, i) for i in range(GEN_BUDGET)]

    designs = benchmark(generate)
    total_lines = sum(d.lines for d in designs)
    benchmark.extra_info["designs"] = GEN_BUDGET
    benchmark.extra_info["total_lines"] = total_lines
    benchmark.extra_info["designs_per_s"] = round(
        GEN_BUDGET / benchmark.stats.stats.mean, 1)


def test_generate_and_check_throughput(benchmark):
    """The full conformance pipeline per design."""

    def sweep():
        return run_sweep(SEED, CHECK_BUDGET, jobs=1,
                         shrink_failures=False)

    report = benchmark(sweep)
    assert report.ok, report.failures
    benchmark.extra_info["designs"] = CHECK_BUDGET
    benchmark.extra_info["outcomes"] = dict(report.counts)
    benchmark.extra_info["designs_per_s"] = round(
        CHECK_BUDGET / benchmark.stats.stats.mean, 1)
