"""Elaborated-design analyzer cost on a wide combinational design.

The analyzer flattens the elaborated design into a signal/process
graph and runs Tarjan's SCC over the zero-delay drive edges, so its
cost scales with elaborated size — cells, not source files.  The
workload is the same 2000-cell inverter ring the ``repro bench-check``
``analysis`` scenario gates on: one giant SCC (the worst case for the
SCC stack) plus its cut acyclic twin for the levelization pass.

Results are emitted as JSON via ``benchmark.extra_info`` like the
other benches (harvested into ``BENCH_analysis.json`` by conftest);
the *committed* ``benchmarks/BENCH_analysis.json`` regression
baseline is the deterministic ``repro bench-check`` scenario, not
this module.
"""

import json

from repro.analysis import (
    LintEngine,
    build_netlist,
    combinational_loops,
    levelize,
)
from repro.metrics.benchcheck import _ring_source
from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

N_CELLS = 2000


def elaborate_ring(cut=False):
    compiler = Compiler(strict=False)
    result = compiler.compile(_ring_source(N_CELLS, cut=cut))
    assert result.ok, result.messages[:3]
    sim = Elaborator(compiler.library).elaborate("ring_top")
    return compiler.library, sim


def test_netlist_build_and_scc(benchmark):
    library, sim = elaborate_ring()

    def scenario():
        graph = build_netlist(sim.records)
        loops = combinational_loops(graph)
        findings = LintEngine(library=library).lint_design(graph)
        return graph, loops, findings

    graph, loops, findings = benchmark.pedantic(
        scenario, rounds=5, iterations=1)
    mean_s = benchmark.stats.stats.mean
    results = {
        "cells": N_CELLS,
        "graph_signals": len(graph.signals),
        "graph_processes": len(graph.processes),
        "loops_found": len(loops),
        "loop_signals": len(loops[0][0]),
        "findings": len(findings),
        "cells_per_s": round(N_CELLS / max(mean_s, 1e-9), 1),
        "analysis_pass_s": round(mean_s, 4),
    }
    print()
    print("=== analysis: netlist build + SCC on the ring ===")
    print(json.dumps(results, indent=2))
    benchmark.extra_info.update(results)
    # The ring is one SCC through every cell, by construction.
    assert len(loops) == 1 and len(loops[0][0]) == N_CELLS
    assert any(d.code == "RPE001" for d in findings)


def test_levelization_on_acyclic_chain(benchmark):
    _, sim = elaborate_ring(cut=True)
    graph = build_netlist(sim.records)

    def scenario():
        return levelize(graph)

    levels, order, cyclic = benchmark.pedantic(
        scenario, rounds=5, iterations=1)
    mean_s = benchmark.stats.stats.mean
    results = {
        "cells": N_CELLS,
        "max_level": max(levels.values()),
        "eval_order_len": len(order),
        "cyclic": len(cyclic),
        "levelize_s": round(mean_s, 4),
    }
    print()
    print("=== analysis: levelization on the cut chain ===")
    print(json.dumps(results, indent=2))
    benchmark.extra_info.update(results)
    # Cutting one edge makes the ring a pure chain: one signal per
    # level, nothing cyclic.
    assert max(levels.values()) == N_CELLS - 1
    assert len(order) == N_CELLS - 1 and not cyclic
