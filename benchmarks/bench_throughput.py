"""E3 — §2.2 compile throughput.

"The compiler compiles VHDL at a little more than 1000 lines per
minute on an Apollo DN4000."  Absolute numbers are machine-bound (a
1989 workstation vs CPython today); the reproducible content is that
throughput is roughly linear in source lines and that the front end is
not the bottleneck (E4 carries the breakdown).
"""

from repro.vhdl.compiler import Compiler

from workloads import count_lines, gen_design


def compile_workload(n_units):
    source = gen_design(n_packages=2, n_units=n_units, n_processes=3)
    compiler = Compiler(strict=False)
    result = compiler.compile(source)
    assert result.ok, result.messages[:3]
    return result


def test_throughput_medium(benchmark):
    result = benchmark(compile_workload, 6)
    lines = result.source_lines
    mean_s = benchmark.stats.stats.mean
    lpm = lines / mean_s * 60
    print()
    print("=== E3 / section 2.2: compile throughput ===")
    print("workload: %d source lines (Figure 2 counting)" % lines)
    print("throughput: %d lines/minute (paper: ~1000 on a DN4000)"
          % lpm)
    benchmark.extra_info["lines"] = lines
    benchmark.extra_info["lines_per_minute"] = round(lpm)
    assert lpm > 1000  # four decades of hardware should beat a DN4000


def test_throughput_scales_linearly(benchmark):
    """Compile time should grow roughly linearly with source size."""
    import time

    def measure():
        points = []
        for n in (2, 4, 8):
            source = gen_design(n_packages=1, n_units=n)
            compiler = Compiler(strict=False)
            t0 = time.perf_counter()
            result = compiler.compile(source)
            dt = time.perf_counter() - t0
            points.append((result.source_lines, dt))
        return points

    points = benchmark.pedantic(measure, rounds=3, iterations=1)
    print()
    print("=== compile-time scaling ===")
    for lines, dt in points:
        print("  %5d lines  %7.1f ms  (%.0f lines/min)"
              % (lines, dt * 1000, lines / dt * 60))
    # Per-line cost of the largest workload within 3x of the smallest:
    # roughly linear, no grammar-size blowup per unit compiled.
    small = points[0][1] / points[0][0]
    large = points[-1][1] / points[-1][0]
    assert large < small * 3
