"""Kernel scaling: per-cycle cost must track the *active* set.

The paper's architecture ends in generated code "linked with a
simulation kernel" (§2), and §5.1 stresses that preemptive signal
assignment makes the kernel — not the compiler — carry the scheduling
burden.  This bench builds the sparse-activity workload the
activity-driven calendar exists for: a ring of ``N_CELLS`` cells (one
signal + one waiting process each) around which ``N_TOKENS`` tokens
circulate — each timestep wakes exactly ``N_TOKENS`` processes and
fires ``N_TOKENS`` transactions while the other ~99% of the design
sits idle.

The calendar kernel's cycle cost is O(active · log heap); the
reference :class:`ScanKernel` (the pre-calendar scheduler) pays
O(N_CELLS) scans per cycle.  Both must produce *identical* semantics —
same cycles, same resumes, same final signal values — the speedup is
pure scheduling.
"""

import time

from repro.sim import Kernel, ScanKernel

NS = 10**6

N_CELLS = 2000  # signals (and processes) in the design
N_TOKENS = 20  # circulating tokens: ~1% of cells active per timestep
WINDOW_FS = 200 * NS  # 200 timesteps (tokens hop once per ns)


def build(kernel_cls, n=N_CELLS, tokens=N_TOKENS):
    """The token-ring: each cell waits on its own signal and, when
    woken, toggles its successor one nanosecond later."""
    k = kernel_cls()
    sigs = [k.signal("cell%d" % i, 0) for i in range(n)]
    rt = k.rt

    stride = n // tokens
    starters = frozenset(j * stride for j in range(tokens))

    def cell(i):
        me = sigs[i]
        nxt = sigs[(i + 1) % n]
        starter = i in starters

        def proc():
            if starter:  # the initialization run launches the token
                rt.assign(nxt, ((1 - rt.read(nxt), 1 * NS),))
            while True:
                yield rt.wait([me])
                rt.assign(nxt, ((1 - rt.read(nxt), 1 * NS),))

        return proc

    for i in range(n):
        k.process("cell%d" % i, cell(i), sensitivity=[sigs[i]])
    return k


def _timed_run(kernel_cls, repeats):
    """Best-of wall-clock for the run phase only (build+initialize
    excluded — they are identical for both schedulers)."""
    best = None
    kernel = None
    for _ in range(repeats):
        k = build(kernel_cls)
        k.initialize()
        t0 = time.perf_counter()
        k.run(until=WINDOW_FS)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best, kernel = dt, k
    return best, kernel


def test_kernel_scaling_sparse_activity(benchmark):
    def window():
        k = build(Kernel)
        k.run(until=WINDOW_FS)
        return k

    k_cal = benchmark(window)
    cal_s, k_cal_timed = _timed_run(Kernel, repeats=3)
    scan_s, k_scan = _timed_run(ScanKernel, repeats=2)

    # Identical semantics: the speedup is pure scheduling.
    assert k_scan.cycles == k_cal.cycles == k_cal_timed.cycles
    assert k_scan.delta_cycles == k_cal.delta_cycles == 0
    assert k_scan.now == k_cal.now == WINDOW_FS
    assert [s.value for s in k_scan.signals] == \
        [s.value for s in k_cal.signals]
    assert sum(s.events for s in k_scan.signals) == \
        sum(s.events for s in k_cal.signals)
    assert [p.resumes for p in k_scan.processes] == \
        [p.resumes for p in k_cal.processes]

    speedup = scan_s / cal_s
    active_fraction = N_TOKENS / float(N_CELLS)
    print()
    print("=== kernel scaling: sparse activity "
          "(%d cells, %d tokens = %.1f%% active) ==="
          % (N_CELLS, N_TOKENS, active_fraction * 100))
    print("  %d cycles over %d ns of model time"
          % (k_cal.cycles, WINDOW_FS // NS))
    print("  scan kernel      %.4fs  (O(design) per cycle)" % scan_s)
    print("  calendar kernel  %.4fs  (O(active log heap) per cycle)"
          % cal_s)
    print("  speedup          %.1fx" % speedup)
    print("  calendar peak %d, stale pops %d, fanout visits %d"
          % (k_cal_timed.calendar_peak, k_cal_timed.stale_pops,
             k_cal_timed.fanout_visits))
    benchmark.extra_info["cells"] = N_CELLS
    benchmark.extra_info["tokens"] = N_TOKENS
    benchmark.extra_info["cycles"] = k_cal.cycles
    benchmark.extra_info["speedup_vs_scan"] = round(speedup, 1)
    benchmark.extra_info["scan_s"] = round(scan_s, 6)
    benchmark.extra_info["calendar_s"] = round(cal_s, 6)
    benchmark.extra_info["fanout_visits"] = k_cal_timed.fanout_visits

    # The acceptance bar: the calendar must beat the scan by >= 5x on
    # the 1%-active workload (typically far more).
    assert speedup >= 5.0, "only %.1fx over the scan kernel" % speedup


def test_cycle_cost_tracks_active_set(benchmark):
    """Doubling the *design* at fixed activity must leave the
    calendar kernel's run time roughly flat (cost follows the active
    set, not design size)."""

    def run_sized(n):
        k = build(Kernel, n=n, tokens=N_TOKENS)
        k.initialize()
        t0 = time.perf_counter()
        k.run(until=WINDOW_FS)
        return time.perf_counter() - t0, k

    def best(n, repeats=3):
        times = [run_sized(n) for _ in range(repeats)]
        return min(t for t, _ in times), times[0][1]

    small_s, k_small = best(N_CELLS)
    large_s, k_large = best(2 * N_CELLS)
    # Same activity -> same resumes after initialization.
    init_small = len(k_small.processes)
    init_large = len(k_large.processes)
    assert sum(p.resumes for p in k_small.processes) - init_small == \
        sum(p.resumes for p in k_large.processes) - init_large

    ratio = large_s / small_s
    print()
    print("=== O(active) check: 2x design, fixed activity ===")
    print("  %d cells: %.4fs   %d cells: %.4fs   ratio %.2fx"
          % (N_CELLS, small_s, 2 * N_CELLS, large_s, ratio))
    benchmark.extra_info["cost_ratio_2x_design"] = round(ratio, 2)

    def window():
        k = build(Kernel, n=2 * N_CELLS, tokens=N_TOKENS)
        k.run(until=WINDOW_FS)
        return k

    benchmark(window)
    # A full-scan kernel would double; allow generous noise headroom.
    assert ratio < 1.7, "per-cycle cost grew with design size"
