"""Kernel scaling: per-cycle cost must track the *active* set.

The paper's architecture ends in generated code "linked with a
simulation kernel" (§2), and §5.1 stresses that preemptive signal
assignment makes the kernel — not the compiler — carry the scheduling
burden.  This bench builds the sparse-activity workload the
activity-driven calendar exists for: a ring of ``N_CELLS`` cells (one
signal + one waiting process each) around which ``N_TOKENS`` tokens
circulate — each timestep wakes exactly ``N_TOKENS`` processes and
fires ``N_TOKENS`` transactions while the other ~99% of the design
sits idle.

The calendar kernel's cycle cost is O(active · log heap); the
reference :class:`ScanKernel` (the pre-calendar scheduler) pays
O(N_CELLS) scans per cycle.  Both must produce *identical* semantics —
same cycles, same resumes, same final signal values — the speedup is
pure scheduling.
"""

import time

from repro.sim import CompiledKernel, Kernel, ScanKernel

NS = 10**6

N_CELLS = 2000  # signals (and processes) in the design
N_TOKENS = 20  # circulating tokens: ~1% of cells active per timestep
WINDOW_FS = 200 * NS  # 200 timesteps (tokens hop once per ns)

# The compiled-backend axis needs VHDL source (specialization starts
# from the elaborated records), and a longer window so the per-run
# wall clock is dominated by steady-state cycles, not startup noise.
COMPILED_WINDOW_FS = 1000 * NS  # 1000 timesteps


def build(kernel_cls, n=N_CELLS, tokens=N_TOKENS):
    """The token-ring: each cell waits on its own signal and, when
    woken, toggles its successor one nanosecond later."""
    k = kernel_cls()
    sigs = [k.signal("cell%d" % i, 0) for i in range(n)]
    rt = k.rt

    stride = n // tokens
    starters = frozenset(j * stride for j in range(tokens))

    def cell(i):
        me = sigs[i]
        nxt = sigs[(i + 1) % n]
        starter = i in starters

        def proc():
            if starter:  # the initialization run launches the token
                rt.assign(nxt, ((1 - rt.read(nxt), 1 * NS),))
            while True:
                yield rt.wait([me])
                rt.assign(nxt, ((1 - rt.read(nxt), 1 * NS),))

        return proc

    for i in range(n):
        k.process("cell%d" % i, cell(i), sensitivity=[sigs[i]])
    return k


def _timed_run(kernel_cls, repeats):
    """Best-of wall-clock for the run phase only (build+initialize
    excluded — they are identical for both schedulers)."""
    best = None
    kernel = None
    for _ in range(repeats):
        k = build(kernel_cls)
        k.initialize()
        t0 = time.perf_counter()
        k.run(until=WINDOW_FS)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best, kernel = dt, k
    return best, kernel


def test_kernel_scaling_sparse_activity(benchmark):
    def window():
        k = build(Kernel)
        k.run(until=WINDOW_FS)
        return k

    k_cal = benchmark(window)
    cal_s, k_cal_timed = _timed_run(Kernel, repeats=3)
    scan_s, k_scan = _timed_run(ScanKernel, repeats=2)

    # Identical semantics: the speedup is pure scheduling.
    assert k_scan.cycles == k_cal.cycles == k_cal_timed.cycles
    assert k_scan.delta_cycles == k_cal.delta_cycles == 0
    assert k_scan.now == k_cal.now == WINDOW_FS
    assert [s.value for s in k_scan.signals] == \
        [s.value for s in k_cal.signals]
    assert sum(s.events for s in k_scan.signals) == \
        sum(s.events for s in k_cal.signals)
    assert [p.resumes for p in k_scan.processes] == \
        [p.resumes for p in k_cal.processes]

    speedup = scan_s / cal_s
    active_fraction = N_TOKENS / float(N_CELLS)
    print()
    print("=== kernel scaling: sparse activity "
          "(%d cells, %d tokens = %.1f%% active) ==="
          % (N_CELLS, N_TOKENS, active_fraction * 100))
    print("  %d cycles over %d ns of model time"
          % (k_cal.cycles, WINDOW_FS // NS))
    print("  scan kernel      %.4fs  (O(design) per cycle)" % scan_s)
    print("  calendar kernel  %.4fs  (O(active log heap) per cycle)"
          % cal_s)
    print("  speedup          %.1fx" % speedup)
    print("  calendar peak %d, stale pops %d, fanout visits %d"
          % (k_cal_timed.calendar_peak, k_cal_timed.stale_pops,
             k_cal_timed.fanout_visits))
    benchmark.extra_info["cells"] = N_CELLS
    benchmark.extra_info["tokens"] = N_TOKENS
    benchmark.extra_info["cycles"] = k_cal.cycles
    benchmark.extra_info["speedup_vs_scan"] = round(speedup, 1)
    benchmark.extra_info["scan_s"] = round(scan_s, 6)
    benchmark.extra_info["calendar_s"] = round(cal_s, 6)
    benchmark.extra_info["fanout_visits"] = k_cal_timed.fanout_visits

    # The acceptance bar: the calendar must beat the scan by >= 5x on
    # the 1%-active workload (typically far more).
    assert speedup >= 5.0, "only %.1fx over the scan kernel" % speedup


def _ring_vhdl(n=N_CELLS, tokens=N_TOKENS):
    """The same token-ring as VHDL source.  ``tokens`` evenly spaced
    starter cells use sensitivity-list processes (their
    initialization run launches the token); the rest wait first."""
    stride = n // tokens
    starters = frozenset(j * stride for j in range(tokens))
    lines = ["entity ring is", "end ring;", "",
             "architecture rtl of ring is"]
    for i in range(n):
        lines.append("  signal c_%d : integer := 0;" % i)
    lines.append("begin")
    for i in range(n):
        j = (i + 1) % n
        if i in starters:
            lines.append(
                "  p_%d: process (c_%d) begin "
                "c_%d <= 1 - c_%d after 1 ns; end process;"
                % (i, i, j, j))
        else:
            lines.append(
                "  p_%d: process begin wait on c_%d; "
                "c_%d <= 1 - c_%d after 1 ns; end process;"
                % (i, i, j, j))
    lines.append("end rtl;")
    return "\n".join(lines)


def _compile_ring():
    from repro.vhdl.compiler import Compiler
    from repro.vhdl.library import LibraryManager

    library = LibraryManager(root=None)
    result = Compiler(library=library, strict=False).compile(
        _ring_vhdl(), filename="ring.vhd")
    assert result.ok, result.messages
    return library


def test_compiled_backend_speedup(benchmark):
    """The backend axis: on the same 2000-cell 1%-active ring the
    compiled backend must run >= 3x faster than the activity kernel.
    Codegen (cold) is timed separately — the speedup gate compares
    steady-state run phases only, so warm-cache runs stay honest."""
    from repro.vhdl.elaborate import Elaborator

    library = _compile_ring()

    def specialize(kernel):
        sim = Elaborator(library, kernel=kernel).elaborate("ring")
        t0 = time.perf_counter()
        kernel.compile_design(sim.records)
        return time.perf_counter() - t0

    def timed_run(kernel_cls, repeats, compiled=False):
        best = None
        kernel = None
        codegen_s = 0.0
        for _ in range(repeats):
            k = kernel_cls()
            if compiled:
                codegen_s = specialize(k)
            else:
                Elaborator(library, kernel=k).elaborate("ring")
            k.initialize()
            t0 = time.perf_counter()
            k.run(until=COMPILED_WINDOW_FS)
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best, kernel = dt, k
        return best, kernel, codegen_s

    # First specialization pays codegen cold; the cache makes the
    # timing repeats warm, which is exactly what we want to measure.
    from repro.sim.compiled import _PROGRAM_CACHE
    _PROGRAM_CACHE.clear()
    cold_kernel = CompiledKernel()
    codegen_cold_s = specialize(cold_kernel)

    event_s, k_ev, _ = timed_run(Kernel, repeats=3)
    comp_s, k_co, _ = timed_run(CompiledKernel, repeats=3,
                                compiled=True)

    # Identical semantics: the speedup is pure dispatch + storage.
    assert k_ev.cycles == k_co.cycles
    assert k_ev.delta_cycles == k_co.delta_cycles == 0
    assert [s.value for s in k_ev.signals] == \
        [s.value for s in k_co.signals]
    assert [s.events for s in k_ev.signals] == \
        [s.events for s in k_co.signals]
    assert [p.resumes for p in k_ev.processes] == \
        [p.resumes for p in k_co.processes]
    assert k_co.compiled_procs == N_CELLS
    assert k_co.slot_signals == N_CELLS

    speedup = event_s / comp_s
    print()
    print("=== backend axis: event vs compiled "
          "(%d cells, %d tokens, %d cycles) ==="
          % (N_CELLS, N_TOKENS, k_ev.cycles))
    print("  codegen (cold)   %.4fs  (once per design fingerprint)"
          % codegen_cold_s)
    print("  event kernel     %.4fs" % event_s)
    print("  compiled kernel  %.4fs  (%d procs, %d slot signals)"
          % (comp_s, k_co.compiled_procs, k_co.slot_signals))
    print("  speedup          %.2fx" % speedup)
    benchmark.extra_info["backend_cells"] = N_CELLS
    benchmark.extra_info["backend_tokens"] = N_TOKENS
    benchmark.extra_info["codegen_cold_s"] = round(codegen_cold_s, 6)
    benchmark.extra_info["event_s"] = round(event_s, 6)
    benchmark.extra_info["compiled_s"] = round(comp_s, 6)
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    benchmark.extra_info["compiled_procs"] = k_co.compiled_procs
    benchmark.extra_info["slot_signals"] = k_co.slot_signals

    def window():
        # Warm window: the fingerprint cache hit makes
        # ``compile_design`` a bind, so this measures elaborate +
        # bind + run — the steady-state cost of a repeat simulation.
        k = CompiledKernel()
        sim = Elaborator(library, kernel=k).elaborate("ring")
        k.compile_design(sim.records)
        k.run(until=COMPILED_WINDOW_FS)
        return k

    benchmark(window)

    # The acceptance bar: >= 3x over the activity kernel on the
    # 1%-active ring, run phase only (codegen reported separately).
    assert speedup >= 3.0, "only %.2fx over the event kernel" % speedup


def test_cycle_cost_tracks_active_set(benchmark):
    """Doubling the *design* at fixed activity must leave the
    calendar kernel's run time roughly flat (cost follows the active
    set, not design size)."""

    def run_sized(n):
        k = build(Kernel, n=n, tokens=N_TOKENS)
        k.initialize()
        t0 = time.perf_counter()
        k.run(until=WINDOW_FS)
        return time.perf_counter() - t0, k

    def best(n, repeats=3):
        times = [run_sized(n) for _ in range(repeats)]
        return min(t for t, _ in times), times[0][1]

    small_s, k_small = best(N_CELLS)
    large_s, k_large = best(2 * N_CELLS)
    # Same activity -> same resumes after initialization.
    init_small = len(k_small.processes)
    init_large = len(k_large.processes)
    assert sum(p.resumes for p in k_small.processes) - init_small == \
        sum(p.resumes for p in k_large.processes) - init_large

    ratio = large_s / small_s
    print()
    print("=== O(active) check: 2x design, fixed activity ===")
    print("  %d cells: %.4fs   %d cells: %.4fs   ratio %.2fx"
          % (N_CELLS, small_s, 2 * N_CELLS, large_s, ratio))
    benchmark.extra_info["cost_ratio_2x_design"] = round(ratio, 2)

    def window():
        k = build(Kernel, n=2 * N_CELLS, tokens=N_TOKENS)
        k.run(until=WINDOW_FS)
        return k

    benchmark(window)
    # A full-scan kernel would double; allow generous noise headroom.
    assert ratio < 1.7, "per-cycle cost grew with design size"
