"""E4 — §2.2 compile-time breakdown.

The paper's claims:

- host C compilation of the generated model: 20–30% of total time;
- reading/fixing-up/writing VIF for foreign units: 40–60%;
- "the time spent walking the parse tree and evaluating attributes is
  a very small percent" — over 80% goes to VIF-like bookkeeping and
  memory management.

Our pipeline is instrumented per phase.  The Python substitution moves
the absolute shares around (CPython function-call costs dominate where
malloc dominated in 1989), so we report both the plain shares and a
foreign-heavy scenario (many units referencing a shared package — the
paper's case), and check the *direction* of the claims: the cascaded
attribute evaluation phase is separable, and VIF I/O grows to a major
share once foreign references dominate.
"""

import time

from repro.vhdl.compiler import Compiler
from repro.vhdl.library import LibraryManager

from workloads import gen_entity_arch, gen_package


def compile_with_foreign_units(n_clients):
    """One package + many client units, re-read through the VIF reader
    each time — the paper's foreign-reference workload."""
    compiler = Compiler(strict=False)
    result0 = compiler.compile(gen_package("shared"))
    timings = dict.fromkeys(
        ("scan", "parse", "attribute_evaluation", "model_compile",
         "vif"), 0.0)
    for k, v in result0.timings.items():
        timings[k] += v
    for i in range(n_clients):
        source = gen_entity_arch("client%d" % i, n_processes=2,
                                 pkg="shared")
        result = compiler.compile(source)
        assert result.ok, result.messages[:3]
        for k, v in result.timings.items():
            timings[k] += v
        # Foreign VIF read: a fresh reader resolves the client's unit
        # and, transitively, the shared package — timed as the paper's
        # "reading and fixing up the VIF" phase.
        t0 = time.perf_counter()
        fresh = LibraryManager()
        for lib, key in compiler.library.compile_order:
            if lib == "work":
                fresh._payloads[(lib, key)] = \
                    compiler.library.payload_of(lib, key)
                fresh._libraries.add(lib)
        fresh.reader.read_unit("work", "rtl(client%d)" % i)
        timings["vif"] += time.perf_counter() - t0
    return timings


def test_time_breakdown(benchmark):
    timings = benchmark.pedantic(
        compile_with_foreign_units, args=(6,), rounds=3, iterations=1)
    total = sum(timings.values())
    print()
    print("=== E4 / section 2.2: compile-time breakdown ===")
    for phase in ("scan", "parse", "attribute_evaluation",
                  "model_compile", "vif"):
        share = timings[phase] / total * 100
        print("  %-22s %6.1f ms  %5.1f%%"
              % (phase, timings[phase] * 1000, share))
    print("paper: cc of generated model 20-30%%; VIF I/O 40-60%%;"
          " attribute evaluation 'a very small percent'")

    vif_share = timings["vif"] / total
    model_share = timings["model_compile"] / total
    attr_share = timings["attribute_evaluation"] / total
    benchmark.extra_info["shares"] = {
        k: round(v / total, 3) for k, v in timings.items()}

    # Directional checks: every phase is nonzero and separable; the
    # back-end compile and VIF phases together are substantial, and
    # scanning/parsing alone do not dominate (the paper's point that
    # tree-walking is not where the time goes).
    assert vif_share > 0.01
    assert model_share > 0.005
    assert timings["scan"] + timings["parse"] < 0.5 * total
    # Where we differ from the paper — and say so: in CPython the
    # attribute-evaluation phase (which embeds exprEval) carries most
    # of the front end, whereas their C evaluator was negligible
    # against 1989 file I/O and malloc.
    assert attr_share > 0.0
