"""Shared benchmark plumbing: common ``BENCH_<name>.json`` emission.

Every ``bench_*.py`` module in this directory reports through
pytest-benchmark; this conftest harvests each test's timing stats and
``extra_info`` values after it runs and, at session end, writes one
``BENCH_<name>.json`` per module in the shared ``repro-metrics/1``
envelope (the same schema ``repro sim --metrics-out`` and ``repro
bench-check`` speak).  CI uploads the files as artifacts so any run's
numbers can be diffed offline with::

    python -m repro bench-check --baseline benchmarks/BENCH_simulation.json \\
        --current bench-out/BENCH_simulation.json

Output lands in ``$REPRO_BENCH_DIR`` (default ``bench-out/``, which is
git-ignored).  The *committed* ``benchmarks/BENCH_*.json`` baselines
are different animals: they are written by ``repro bench-check
--update`` from the deterministic scenarios in
``repro.metrics.benchcheck`` and act as the regression gate.
"""

import json
import os

import pytest

from repro.metrics import envelope

#: module stem (without ``bench_``) -> {test name -> record}
_RESULTS = {}


def _module_name(node):
    path = getattr(node, "path", None) or getattr(node, "fspath", "")
    stem = os.path.splitext(os.path.basename(str(path)))[0]
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    return stem


@pytest.fixture(autouse=True)
def _collect_benchmark(request):
    """After each test, harvest its pytest-benchmark results."""
    yield
    fixture = request.node.funcargs.get("benchmark")
    if fixture is None or getattr(fixture, "stats", None) is None:
        return  # test did not actually run a benchmark
    stats = fixture.stats.stats
    record = {
        "timings": {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
            "stddev_s": getattr(stats, "stddev", 0.0),
            "rounds": getattr(stats, "rounds", len(stats.data)),
        },
        "values": dict(fixture.extra_info),
    }
    name = _module_name(request.node)
    _RESULTS.setdefault(name, {})[request.node.name] = record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    out_dir = os.environ.get("REPRO_BENCH_DIR", "bench-out")
    os.makedirs(out_dir, exist_ok=True)
    for name, tests in sorted(_RESULTS.items()):
        payload = envelope("bench-suite", bench=name, tests=tests)
        path = os.path.join(out_dir, "BENCH_%s.json" % name)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True,
                      default=str)
            f.write("\n")
        os.replace(tmp, path)
    tw = getattr(session.config, "get_terminal_writer", lambda: None)()
    msg = "bench results: %s" % ", ".join(
        os.path.join(out_dir, "BENCH_%s.json" % n)
        for n in sorted(_RESULTS))
    if tw is not None:
        tw.line(msg)
    else:
        print(msg)
