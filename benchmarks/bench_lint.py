"""Static-lint pass cost over the synthetic workload.

The linter runs post-compile over the VIF (generated models), so its
cost scales with emitted model size, not VHDL surface syntax.  Two
questions matter for the CI gate:

- absolute: how many units/second does a whole-library
  ``LintEngine.lint_library()`` pass sustain on the standard
  multi-unit workload?
- marginal: what does ``build --lint`` add on a *warm* build, where
  every unit is a cache hit and lint is the only real work?

Results are emitted as JSON via ``benchmark.extra_info`` like the
other benches (harvested into ``BENCH_lint.json`` by conftest); the
*committed* ``benchmarks/BENCH_lint.json`` regression baseline is the
deterministic ``repro bench-check`` scenario, not this module.
"""

import json
import os
import shutil
import time

from repro.analysis import LintEngine
from repro.build import IncrementalBuilder
from repro.vhdl.compiler import Compiler

from workloads import count_lines, gen_entity_arch, gen_package

N_UNITS = 6


def make_sources():
    sources = [("pkg0.vhd", gen_package("pkg0"))]
    for i in range(N_UNITS):
        sources.append(("unit%d.vhd" % i, gen_entity_arch(
            "unit%d" % i, n_processes=4, pkg="pkg0")))
    return sources


def test_lint_library_pass(benchmark):
    sources = make_sources()
    lines = sum(count_lines(text) for _, text in sources)
    compiler = Compiler(strict=False)
    for name, text in sources:
        result = compiler.compile(text, filename=name)
        assert result.ok, result.messages[:3]

    def scenario():
        engine = LintEngine(library=compiler.library)
        return engine.lint_library()

    findings = benchmark.pedantic(scenario, rounds=5, iterations=1)
    units = len(compiler.library._units)
    mean_s = benchmark.stats.stats.mean
    results = {
        "source_lines": lines,
        "units": units,
        "findings": len(findings),
        "units_per_s": round(units / max(mean_s, 1e-9), 1),
        "lint_pass_s": round(mean_s, 4),
    }
    print()
    print("=== lint: whole-library pass ===")
    print(json.dumps(results, indent=2))
    benchmark.extra_info.update(results)
    # The workload is a clean design: zero findings, by construction.
    assert findings == []


def test_lint_overhead_on_warm_build(benchmark, tmp_path):
    base = str(tmp_path)
    files = []
    for name, text in make_sources():
        path = os.path.join(base, name)
        with open(path, "w") as f:
            f.write(text)
        files.append(path)
    root = os.path.join(base, "libs")

    from repro.vhdl.grammar import principal_grammar

    principal_grammar()  # Linguist runs before compiling (paper §2)
    shutil.rmtree(root, ignore_errors=True)
    report = IncrementalBuilder(root).build(files)  # cold, no lint
    assert report.ok, report.summary()

    def warm(lint=None):
        t0 = time.perf_counter()
        rep = IncrementalBuilder(root).build(files, lint=lint)
        dt = time.perf_counter() - t0
        assert rep.ok and rep.stats.get("ag_evaluations", 0) == 0
        return dt, rep

    def scenario():
        plain_s, _ = warm()
        linted_s, rep = warm(lint=LintEngine())
        return plain_s, linted_s, rep

    plain_s, linted_s, rep = benchmark.pedantic(
        scenario, rounds=3, iterations=1)
    results = {
        "files": len(files),
        "warm_s": round(plain_s, 4),
        "warm_lint_s": round(linted_s, 4),
        "lint_overhead_x": round(linted_s / max(plain_s, 1e-9), 2),
        "findings": len(rep.lint_findings),
    }
    print()
    print("=== lint: marginal cost on a warm build ===")
    print(json.dumps(results, indent=2))
    benchmark.extra_info.update(results)
    assert rep.lint_findings == []
