"""E5 — footnote 3: configuration units compile disproportionately
slowly per source line.

"Configuration units typically consist of very few source lines that
cause large data structures built by compiling other compilation units
to be read into memory and edited ...; the bulk of the work in
processing these units is in reading and traversing these data
structures rather than analyzing the source code."

We compile (a) a behavioral unit and (b) a configuration unit for a
previously compiled structural design, both measured end-to-end with
the foreign-VIF re-read a fresh compilation session performs, and
compare per-line costs.
"""

import json
import time

from repro.vhdl.compiler import Compiler
from repro.vhdl.library import LibraryManager

from workloads import (
    count_lines,
    gen_configuration,
    gen_entity_arch,
    gen_structural,
)


def prepare_library():
    compiler = Compiler(strict=False)
    compiler.compile(gen_entity_arch("leaf", n_processes=6,
                                     n_signals=8,
                                     stmts_per_process=10))
    compiler.compile(gen_structural("board", "leaf", n_instances=48))
    return compiler


def measure_pair():
    compiler = prepare_library()

    behavioral = gen_entity_arch("plain", n_processes=4,
                                 stmts_per_process=8)
    t0 = time.perf_counter()
    res_b = compiler.compile(behavioral)
    t_behavioral = time.perf_counter() - t0
    assert res_b.ok

    # "Very few source lines": one for-all binding — but compiling it
    # in a fresh session forces the whole board VIF into memory.
    config = gen_configuration(
        "cfg", "board", "struct", ["all"], "leaf", "rtl")
    # A fresh session compiles the configuration: the configured
    # design's VIF is read back from its stored (serialized) form and
    # traversed — exactly the paper's dominant cost for these units.
    stored = {
        (lib, key): json.dumps(compiler.library.payload_of(lib, key))
        for lib, key in compiler.library.compile_order
        if lib == "work"
    }
    t0 = time.perf_counter()
    fresh = LibraryManager()
    for (lib, key), text in stored.items():
        fresh._payloads[(lib, key)] = json.loads(text)
        fresh._libraries.add(lib)
        node = fresh.reader.read_unit(lib, key)["unit"]
        fresh._units[(lib, key)] = node
        fresh.compile_order.append((lib, key))
    t_read = time.perf_counter() - t0
    session = Compiler(library=fresh, strict=False)
    res_c = session.compile(config)
    t_config = t_read + (time.perf_counter() - t0 - t_read)
    t_config = time.perf_counter() - t0
    assert res_c.ok, res_c.messages[:3]

    return {
        "behavioral_lines": count_lines(behavioral),
        "behavioral_time": t_behavioral,
        "config_lines": count_lines(config),
        "config_time": t_config,
        "config_read": t_read,
        "config_syntax": res_c.timings["scan"] + res_c.timings["parse"],
    }


def test_configuration_units_slower_per_line(benchmark):
    m = benchmark.pedantic(measure_pair, rounds=3, iterations=1)
    per_line_b = m["behavioral_time"] / m["behavioral_lines"]
    per_line_c = m["config_time"] / m["config_lines"]
    print()
    print("=== E5 / footnote 3: configuration-unit cost ===")
    print("  behavioral unit: %4d lines, %6.1f ms, %6.2f ms/line"
          % (m["behavioral_lines"], m["behavioral_time"] * 1e3,
             per_line_b * 1e3))
    print("  config unit:     %4d lines, %6.1f ms, %6.2f ms/line"
          % (m["config_lines"], m["config_time"] * 1e3,
             per_line_c * 1e3))
    print("    of which foreign-VIF read: %6.1f ms;"
          " own syntax analysis: %6.2f ms"
          % (m["config_read"] * 1e3, m["config_syntax"] * 1e3))
    print("  per-line ratio: %.1fx (paper: configs 'not as fast')"
          % (per_line_c / per_line_b))
    benchmark.extra_info["per_line_ratio"] = round(
        per_line_c / per_line_b, 2)
    benchmark.extra_info["read_vs_syntax"] = round(
        m["config_read"] / max(m["config_syntax"], 1e-9), 1)
    # The paper's precise claim: "the bulk of the work in processing
    # these units is in reading and traversing these data structures
    # rather than analyzing the source code of the configuration
    # unit."  Reading the foreign VIF dominates the config's own
    # syntax analysis by a wide margin.
    assert m["config_lines"] < m["behavioral_lines"] / 4
    assert m["config_read"] > 3 * m["config_syntax"]
