"""E7 — §4.3: applicative symbol-table structures.

The paper implements ENV as a front-extended applicative list and
notes: "There are applicative forms of balanced trees, and other
data-structures, that can instead be used to make the search more
efficient" (Myers).  We measure lookup cost in the linked Env against
the persistent AVL map across environment sizes, reproducing the
trade-off: the list wins for the small scopes typical of lookups near
the front, the balanced tree wins for large flat environments
(packages with hundreds of declarations).
"""

from repro.applicative import AVLMap, Env


def build_env(n):
    env = Env.EMPTY
    for i in range(n):
        env = env.bind("name%d" % i, i)
    return env


def build_avl(n):
    m = AVLMap()
    for i in range(n):
        m = m.insert("name%d" % i, i)
    return m


def lookup_all_env(env, n):
    total = 0
    for i in range(n):
        total += env.lookup("name%d" % i).entries[0]
    return total


def lookup_all_avl(m, n):
    total = 0
    for i in range(n):
        total += m.get("name%d" % i)
    return total


N = 300


def test_linked_env_lookup(benchmark):
    env = build_env(N)
    total = benchmark(lookup_all_env, env, N)
    assert total == N * (N - 1) // 2
    benchmark.extra_info["structure"] = "linked (paper's simple form)"


def test_avl_env_lookup(benchmark):
    m = build_avl(N)
    total = benchmark(lookup_all_avl, m, N)
    assert total == N * (N - 1) // 2
    benchmark.extra_info["structure"] = "persistent AVL (Myers)"


def test_front_bias_favors_linked(benchmark):
    """Lookups of recently bound names are O(1) in the linked form —
    the common case during declaration processing."""
    env = build_env(N)

    def front_lookups():
        total = 0
        for _ in range(N):
            total += env.lookup("name%d" % (N - 1)).entries[0]
        return total

    benchmark(front_lookups)


def test_crossover_shape(benchmark):
    """The balanced structure's advantage grows with size — the
    paper's reason to cite Myers despite shipping the simple list."""
    import time

    def measure():
        rows = []
        for n in (50, 200, 800):
            env = build_env(n)
            avl = build_avl(n)
            t0 = time.perf_counter()
            lookup_all_env(env, n)
            t_env = time.perf_counter() - t0
            t0 = time.perf_counter()
            lookup_all_avl(avl, n)
            t_avl = time.perf_counter() - t0
            rows.append((n, t_env, t_avl))
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)
    print()
    print("=== E7 / section 4.3: ENV structure trade-off ===")
    print("  %6s %12s %12s %8s" % ("size", "linked", "AVL", "ratio"))
    for n, t_env, t_avl in rows:
        print("  %6d %9.3f ms %9.3f ms %7.1fx"
              % (n, t_env * 1e3, t_avl * 1e3, t_env / t_avl))
    # The linked/AVL ratio must grow with n (quadratic vs n log n).
    first_ratio = rows[0][1] / rows[0][2]
    last_ratio = rows[-1][1] / rows[-1][2]
    assert last_ratio > first_ratio
