"""Incremental build: cold vs. warm vs. one-file-touched.

The paper's separate-compilation libraries (§2) make skip-unchanged
work possible; this bench quantifies it on the multi-unit workload.
The acceptance bar: a warm no-change rebuild performs zero AG
evaluations and is at least 5x faster than the cold build, and a
``--jobs N`` parallel cold build of the independent files is no
slower than serial (it only *wins* wall-clock when the host actually
has more than one CPU — workers are fork-based Python processes).

Results are emitted as JSON via ``benchmark.extra_info`` like the
other benches.
"""

import json
import os
import shutil
import time

from repro.build import IncrementalBuilder

from workloads import count_lines, gen_entity_arch, gen_package

N_UNITS = 6


def make_project(base):
    src = os.path.join(base, "src")
    os.makedirs(src, exist_ok=True)
    files = []
    path = os.path.join(src, "pkg0.vhd")
    with open(path, "w") as f:
        f.write(gen_package("pkg0"))
    files.append(path)
    for i in range(N_UNITS):
        path = os.path.join(src, "unit%d.vhd" % i)
        with open(path, "w") as f:
            f.write(gen_entity_arch(
                "unit%d" % i, n_processes=4, pkg="pkg0"))
        files.append(path)
    return files


def timed_build(root, files, jobs=1, force=False):
    t0 = time.perf_counter()
    report = IncrementalBuilder(root, jobs=jobs).build(
        files, force=force)
    dt = time.perf_counter() - t0
    assert report.ok, report.summary()
    return dt, report


def test_incremental_speedup(benchmark, tmp_path):
    base = str(tmp_path)
    files = make_project(base)
    lines = sum(count_lines(open(f).read()) for f in files)
    root = os.path.join(base, "libs")

    # Warm the generated grammar once so "cold" measures compilation,
    # not the Linguist run (the paper runs Linguist before compiling).
    from repro.vhdl.grammar import principal_grammar

    principal_grammar()

    def scenario():
        shutil.rmtree(root, ignore_errors=True)
        cold, cold_rep = timed_build(root, files)
        warm, warm_rep = timed_build(root, files)
        assert warm_rep.stats["ag_evaluations"] == 0, \
            warm_rep.summary()
        # Touch one leaf unit (a real edit, not just layout).
        with open(files[1]) as f:
            text = f.read()
        with open(files[1], "w") as f:
            f.write(text.replace(
                "signal acc : integer := 0;",
                "signal acc : integer := 1;"))
        touched, touch_rep = timed_build(root, files)
        assert len(touch_rep.paths("compiled")) == 1, \
            touch_rep.summary()
        with open(files[1], "w") as f:
            f.write(text)  # restore for the next round
        return cold, warm, touched

    cold, warm, touched = benchmark.pedantic(
        scenario, rounds=3, iterations=1)

    speedup_warm = cold / warm
    speedup_touch = cold / touched
    results = {
        "source_lines": lines,
        "files": len(files),
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "one_file_touched_s": round(touched, 4),
        "warm_speedup": round(speedup_warm, 1),
        "touch_speedup": round(speedup_touch, 1),
    }
    print()
    print("=== incremental build: cold vs warm vs 1-file-touched ===")
    print(json.dumps(results, indent=2))
    benchmark.extra_info.update(results)
    assert speedup_warm >= 5.0, (
        "warm no-change rebuild only %.1fx faster than cold"
        % speedup_warm)
    assert speedup_touch > 1.0


def test_parallel_vs_serial(benchmark, tmp_path):
    base = str(tmp_path)
    files = make_project(base)

    from repro.vhdl.grammar import principal_grammar

    principal_grammar()

    def scenario():
        ser_root = os.path.join(base, "ser")
        par_root = os.path.join(base, "par")
        shutil.rmtree(ser_root, ignore_errors=True)
        shutil.rmtree(par_root, ignore_errors=True)
        serial, _ = timed_build(ser_root, files, jobs=1)
        parallel, rep = timed_build(par_root, files, jobs=4)
        # identical library contents regardless of jobs
        for lib in ("work",):
            a = sorted(os.listdir(os.path.join(ser_root, lib)))
            b = sorted(os.listdir(os.path.join(par_root, lib)))
            assert a == b
            for name in a:
                with open(os.path.join(ser_root, lib, name), "rb") as f:
                    sa = f.read()
                with open(os.path.join(par_root, lib, name), "rb") as f:
                    sb = f.read()
                assert sa == sb, "artifact %s differs" % name
        return serial, parallel

    serial, parallel = benchmark.pedantic(
        scenario, rounds=3, iterations=1)
    results = {
        "serial_s": round(serial, 4),
        "parallel_s": round(parallel, 4),
        "parallel_speedup": round(serial / parallel, 2),
        "cpus": os.cpu_count(),
    }
    print()
    print("=== parallel (-j4) vs serial cold build ===")
    print(json.dumps(results, indent=2))
    benchmark.extra_info.update(results)
    if (os.cpu_count() or 1) > 1:
        # Parallelism can only win wall-clock with real cores.
        assert parallel < serial, results
