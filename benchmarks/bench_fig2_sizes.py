"""E1 — Figure 2: size summary of the compiler.

The paper reports hand-written source versus generated C per component:

                      source          [generated] C
    AG               16827 (37%)      67919 (62%)
    VIF description   1265 ( 3%)      14200 (13%)
    out-of-line func 20845 (45%)      20845 (19%)
    interface code    7132 (15%)       7132 ( 6%)
    total            46069            110096

We regenerate the same table for this repository: our AG sources are
the two grammar-spec modules, the VIF description is ``schema.vif``,
the out-of-line functions are the semantic helper modules, and the
interface code is drivers/library/elaboration.  "Generated" counts the
code our generators actually emit: the VIF access module, and the
Python + C models produced by compiling a reference workload.
"""

import os

import repro

from workloads import count_lines, gen_configuration, gen_design, \
    gen_structural

SRC = os.path.dirname(os.path.abspath(repro.__file__))

#: Figure 2 row -> the files playing that role here.
CATEGORIES = {
    "AG": [
        "vhdl/grammar.py",
        "vhdl/expr_grammar.py",
        "vif/schema_lang.py",
    ],
    "VIF description": [
        "vif/schema.vif",
    ],
    "out-of-line func": [
        "vhdl/expr_sem.py",
        "vhdl/semantics_decl.py",
        "vhdl/semantics_stmt.py",
        "vhdl/semantics_unit.py",
        "vhdl/lef.py",
        "vhdl/vtypes.py",
        "vhdl/symtab.py",
        "vhdl/stdpkg.py",
    ],
    "interface code": [
        "vhdl/compiler.py",
        "vhdl/compile_ctx.py",
        "vhdl/library.py",
        "vhdl/elaborate.py",
        "vhdl/lexer.py",
        "vhdl/codegen/cmodel.py",
        "vhdl/codegen/pymodel.py",
    ],
}

PAPER = {
    "AG": (16827, 37, 67919, 62),
    "VIF description": (1265, 3, 14200, 13),
    "out-of-line func": (20845, 45, 20845, 19),
    "interface code": (7132, 15, 7132, 6),
}


def _loc(rel):
    with open(os.path.join(SRC, rel)) as f:
        return count_lines(f.read())


def measure_sizes():
    from repro.ag.emit import emit_evaluator_source
    from repro.vhdl.compiler import Compiler
    from repro.vhdl.expr_grammar import expr_grammar
    from repro.vhdl.grammar import principal_grammar
    from repro.vif import nodes
    from repro.vif.schema_lang import schema_processor

    source = {
        cat: sum(_loc(f) for f in files)
        for cat, files in CATEGORIES.items()
    }

    generated = dict(source)  # hand-written code "generates itself",
    # as in Figure 2's out-of-line and interface rows.
    # The AG row generates (a) the evaluators — LALR tables, rule
    # indices, visit sequences, emitted exactly as Linguist emitted its
    # C evaluator — and (b) the model code produced for a reference
    # workload.
    evaluator_lines = sum(
        count_lines(emit_evaluator_source(g))
        for g in (principal_grammar(), expr_grammar(),
                  schema_processor()[1])
    )
    compiler = Compiler(strict=False)
    compiler.compile(gen_design(n_packages=2, n_units=4))
    compiler.compile(gen_structural("big", "unit0", n_instances=4))
    compiler.compile(gen_configuration(
        "cfg", "big", "struct", ["u0", "u1"], "unit0", "rtl"))
    model_lines = 0
    for lib, key in compiler.library.compile_order:
        node = compiler.library.find_unit(lib, key) \
            or compiler.library._units.get((lib, key))
        model_lines += count_lines(getattr(node, "py_source", "") or "")
        model_lines += count_lines(getattr(node, "c_source", "") or "")
    generated["AG"] = evaluator_lines + model_lines
    generated["VIF description"] = count_lines(nodes.generated_source())
    return source, generated


def format_table(source, generated):
    s_total = sum(source.values())
    g_total = sum(generated.values())
    rows = ["%-18s %8s %6s   %10s %6s" % (
        "", "source", "", "generated", "")]
    for cat in CATEGORIES:
        rows.append("%-18s %8d (%3d%%)   %10d (%3d%%)" % (
            cat, source[cat], round(100 * source[cat] / s_total),
            generated[cat], round(100 * generated[cat] / g_total)))
    rows.append("%-18s %8d          %10d" % ("total", s_total, g_total))
    return "\n".join(rows)


def test_fig2_size_summary(benchmark):
    source, generated = benchmark(measure_sizes)
    print()
    print("=== E1 / Figure 2: compiler size summary ===")
    print(format_table(source, generated))
    print()
    print("paper's row shares: AG 37%/62%, VIF 3%/13%, "
          "out-of-line 45%/19%, interface 15%/6%")

    s_total = sum(source.values())
    # Shape checks mirroring Figure 2: out-of-line functions are the
    # largest hand-written block; the VIF description is tiny relative
    # to the access code generated from it.
    assert source["out-of-line func"] == max(source.values())
    assert source["VIF description"] / s_total < 0.10
    assert generated["VIF description"] > 4 * source["VIF description"]
    # The AG row generates (far) more code than any other row.
    assert generated["AG"] == max(generated.values())

    benchmark.extra_info["source_total"] = s_total
    benchmark.extra_info["generated_total"] = sum(generated.values())
