"""Phase tracing: spans, Chrome export, and cross-process merging.

Includes the acceptance test that ``repro build --jobs 2 --profile``
emits one well-formed merged Chrome trace containing spans recorded by
at least two worker processes.
"""

import json
import os

import pytest

from repro.cli import main
from repro.diag import Tracer
from repro.diag.trace import load_trace, merge_traces


class TestTracer:
    def test_phase_records_complete_event(self):
        tracer = Tracer()
        with tracer.phase("scan", file="a.vhd"):
            pass
        (event,) = tracer.events
        assert event["name"] == "scan"
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0.0
        assert event["args"] == {"file": "a.vhd"}

    def test_phase_yields_event_with_duration(self):
        tracer = Tracer()
        with tracer.phase("parse") as ev:
            pass
        assert ev["dur"] == tracer.events[0]["dur"]

    def test_event_recorded_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.phase("boom"):
                raise RuntimeError("x")
        assert tracer.events[0]["name"] == "boom"

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("cache-hit", path="a.vhd")
        tracer.counter("cache", {"hits": 3, "misses": 1})
        kinds = [e["ph"] for e in tracer.events]
        assert kinds == ["i", "C"]
        assert tracer.events[1]["args"] == {"hits": 3, "misses": 1}

    def test_phase_seconds_aggregates(self):
        tracer = Tracer()
        with tracer.phase("scan"):
            pass
        with tracer.phase("scan"):
            pass
        with tracer.phase("parse"):
            pass
        seconds = tracer.phase_seconds()
        assert set(seconds) == {"scan", "parse"}
        assert seconds["scan"] >= 0.0

    def test_summary_mentions_phases(self):
        tracer = Tracer()
        with tracer.phase("vif"):
            pass
        text = tracer.summary("compile profile")
        assert text.startswith("compile profile:")
        assert "vif" in text
        assert "x1" in text

    def test_tid_is_stable_small_index(self):
        """tid must be a stable per-thread index, not a truncated
        (collision-prone) get_ident()."""
        import threading

        from repro.trace import thread_index

        tracer = Tracer()
        with tracer.phase("a"):
            pass
        with tracer.phase("b"):
            pass
        tids = {e["tid"] for e in tracer.events}
        assert tids == {thread_index()}
        assert tids != {threading.get_ident() & 0xFFFF} or \
            thread_index() == threading.get_ident() & 0xFFFF

    def test_phases_carry_span_identity(self):
        tracer = Tracer()
        with tracer.phase("outer"):
            with tracer.phase("inner"):
                pass
        inner, outer = tracer.events
        assert outer["trace_id"] == inner["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["span_id"] != inner["span_id"]

    def test_phase_attaches_to_ambient_context(self):
        from repro.trace import SpanContext, use

        tracer = Tracer()
        root = SpanContext()
        with use(root):
            with tracer.phase("work"):
                pass
        (event,) = tracer.events
        assert event["trace_id"] == root.trace_id
        assert event["parent_id"] == root.span_id

    def test_complete_records_retroactive_span(self):
        from repro.trace import SpanContext

        tracer = Tracer()
        ctx = SpanContext()
        tracer.complete("queue_wait", 1000.0, 42.0, cat="serve",
                        ctx=ctx, job="j1")
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["ts"] == 1000.0 and event["dur"] == 42.0
        assert event["span_id"] == ctx.span_id
        assert event["args"] == {"job": "j1"}

    def test_aggregation_safe_under_concurrent_append(self):
        """phase_seconds/summary snapshot under the lock; hammering
        them while another thread appends must never raise."""
        import threading

        tracer = Tracer()
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                with tracer.phase("spin"):
                    pass

        def reader():
            try:
                for _ in range(200):
                    tracer.phase_seconds()
                    tracer.summary("live")
                    tracer.chrome()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=writer)
        t.start()
        try:
            reader()
        finally:
            stop.set()
            t.join()
        assert errors == []


class TestMerging:
    def fake_worker_events(self, pid):
        return [{"name": "attribute_evaluation", "cat": "phase",
                 "ph": "X", "ts": 100.0 + pid, "dur": 5.0,
                 "pid": pid, "tid": 1}]

    def test_add_events_merges_worker_pids(self):
        tracer = Tracer()
        with tracer.phase("schedule"):
            pass
        tracer.add_events(self.fake_worker_events(11111))
        tracer.add_events(self.fake_worker_events(22222))
        assert set(tracer.pids()) == {os.getpid(), 11111, 22222}
        assert len(tracer.events) == 3

    def test_add_events_copies(self):
        tracer = Tracer()
        original = self.fake_worker_events(1)
        tracer.add_events(original)
        tracer.events[0]["name"] = "mutated"
        assert original[0]["name"] == "attribute_evaluation"

    def test_merge_traces_sorts_by_timestamp(self):
        a = [{"name": "b", "ts": 5.0}]
        b = [{"name": "a", "ts": 1.0}, {"name": "c", "ts": 9.0}]
        merged = merge_traces(a, b)
        assert [e["name"] for e in merged] == ["a", "b", "c"]


class TestChromeExport:
    def test_chrome_shape(self):
        tracer = Tracer()
        with tracer.phase("scan"):
            pass
        doc = tracer.chrome()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_events_sorted_by_ts(self):
        tracer = Tracer()
        tracer.add_events([{"name": "late", "ts": 9e18, "ph": "X",
                            "dur": 1, "pid": 1, "tid": 1}])
        with tracer.phase("early"):
            pass
        names = [e["name"] for e in tracer.chrome()["traceEvents"]]
        assert names[-1] == "late"

    def test_write_and_load_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.phase("scan"):
            pass
        path = str(tmp_path / "trace.json")
        assert tracer.write(path) == path
        events = load_trace(path)
        assert events[0]["name"] == "scan"
        # no leftover temp files from the atomic-rename dance
        assert os.listdir(str(tmp_path)) == ["trace.json"]


ENTITY = """entity %(name)s is end %(name)s;
architecture a of %(name)s is
  signal x : integer := %(init)d;
begin
end a;
"""


def _write_project(tmp_path, n=3):
    files = []
    for i in range(n):
        p = tmp_path / ("e%d.vhd" % i)
        p.write_text(ENTITY % {"name": "e%d" % i, "init": i})
        files.append(str(p))
    return files


@pytest.fixture()
def collect():
    lines = []

    def out(text=""):
        lines.append(str(text))

    out.lines = lines
    return out


class TestBuildProfileTrace:
    """Acceptance: a parallel build writes one merged Chrome trace."""

    def test_build_profile_merged_trace(self, tmp_path, collect):
        from repro.build.scheduler import _fork_available

        files = _write_project(tmp_path)
        root = str(tmp_path / "libs")
        trace_path = str(tmp_path / "build-trace.json")
        rc = main(["--root", root, "--profile",
                   "--trace-out", trace_path,
                   "build", "--jobs", "2"] + files, out=collect)
        assert rc == 0
        events = load_trace(trace_path)
        assert events, "trace file must contain events"
        # well-formed: every complete event has the Chrome trace keys
        for event in events:
            assert "name" in event and "ph" in event and "ts" in event
            if event["ph"] == "X":
                for key in ("dur", "pid", "tid"):
                    assert key in event
        # one merged timeline: timestamp-sorted
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        # driver phases and per-file compile phases both present
        names = {e["name"] for e in events}
        assert "fingerprint" in names
        assert "attribute_evaluation" in names
        pids = {e["pid"] for e in events if "pid" in e}
        if _fork_available():
            # spans from >= 2 worker processes beyond the driver
            assert len(pids - {os.getpid()}) >= 2
        else:  # pragma: no cover - non-fork platforms
            assert pids == {os.getpid()}
        assert any("build profile" in line for line in collect.lines)

    def test_profile_without_trace_out_uses_default(
            self, tmp_path, collect):
        files = _write_project(tmp_path, n=1)
        root = str(tmp_path / "libs")
        rc = main(["--root", root, "--profile", "build"] + files,
                  out=collect)
        assert rc == 0
        default = os.path.join(root, "build-trace.json")
        assert os.path.exists(default)
        assert json.load(open(default))["traceEvents"]

    def test_compile_trace_out(self, tmp_path, collect):
        files = _write_project(tmp_path, n=1)
        trace_path = str(tmp_path / "compile-trace.json")
        rc = main(["--root", str(tmp_path / "libs"),
                   "--trace-out", trace_path, "compile"] + files,
                  out=collect)
        assert rc == 0
        names = {e["name"] for e in load_trace(trace_path)}
        assert {"scan", "parse", "attribute_evaluation"} <= names
