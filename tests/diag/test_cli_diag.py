"""End-to-end CLI tests for the diagnostics and observability flags."""

import json

import pytest

from repro.cli import main

GOOD = """entity ok is end ok;
architecture a of ok is
  signal x : integer := 1;
begin
end a;
"""

SEM_BAD = """entity e is end e;
architecture a of e is
  signal s : no_such_type;
begin
end a;
"""

PARSE_BAD = """entity f is end f
architecture b of f is
begin
end b;
"""


@pytest.fixture()
def collect():
    lines = []

    def out(text=""):
        lines.append(str(text))

    out.lines = lines
    return out


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def _json_blob(lines):
    """The single out() call holding a JSON document."""
    return next(l for l in lines if l.lstrip().startswith("{"))


class TestSarifAcceptance:
    """Compiling two erroneous files yields a SARIF log with at least
    two diagnostics carrying correct file/line/column spans."""

    def test_two_files_two_results(self, tmp_path, collect):
        a = _write(tmp_path, "a.vhd", SEM_BAD)
        b = _write(tmp_path, "b.vhd", PARSE_BAD)
        rc = main(["--root", str(tmp_path / "libs"),
                   "--diag-format", "sarif", "compile", a, b],
                  out=collect)
        assert rc == 1
        log = json.loads(_json_blob(collect.lines))
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert len(results) >= 2

        def locs(result):
            return result["locations"][0]["physicalLocation"]

        sem = [r for r in results if r["ruleId"] == "SEM001"]
        assert sem, "semantic diagnostic expected"
        assert locs(sem[0])["artifactLocation"]["uri"] == a
        assert locs(sem[0])["region"]["startLine"] == 3

        parse = [r for r in results if r["ruleId"] == "PARSE001"]
        assert parse, "parse diagnostic expected"
        assert locs(parse[0])["artifactLocation"]["uri"] == b
        assert locs(parse[0])["region"]["startLine"] == 2
        assert locs(parse[0])["region"]["startColumn"] >= 1

    def test_json_lines_format(self, tmp_path, collect):
        a = _write(tmp_path, "a.vhd", SEM_BAD)
        main(["--root", str(tmp_path / "libs"),
              "--diag-format", "json", "compile", a], out=collect)
        blob = _json_blob(collect.lines)
        objs = [json.loads(line) for line in blob.splitlines()]
        assert objs[0]["code"] == "SEM001"
        assert objs[0]["span"]["file"] == a

    def test_text_format_stays_legacy(self, tmp_path, collect):
        a = _write(tmp_path, "a.vhd", SEM_BAD)
        main(["--root", str(tmp_path / "libs"), "compile", a],
             out=collect)
        assert not any(l.lstrip().startswith("{")
                       for l in collect.lines)


class TestBuildDiagFormat:
    def test_build_sarif(self, tmp_path, collect):
        a = _write(tmp_path, "a.vhd", SEM_BAD)
        rc = main(["--root", str(tmp_path / "libs"),
                   "--diag-format", "sarif", "build", a], out=collect)
        assert rc == 1
        log = json.loads(_json_blob(collect.lines))
        assert any(r["ruleId"] == "SEM001"
                   for r in log["runs"][0]["results"])


class TestProfileFlags:
    def test_compile_profile_prints_tables(self, tmp_path, collect):
        g = _write(tmp_path, "ok.vhd", GOOD)
        rc = main(["--root", str(tmp_path / "libs"), "--profile",
                   "compile", g], out=collect)
        assert rc == 0
        text = "\n".join(collect.lines)
        assert "compile profile" in text
        assert "attribute_evaluation" in text
        assert "rule firing" in text  # AG observer summary

    def test_werror_clean_compile_passes(self, tmp_path, collect):
        g = _write(tmp_path, "ok.vhd", GOOD)
        assert main(["--root", str(tmp_path / "libs"), "-W",
                     "compile", g], out=collect) == 0

    def test_explain_cycle_flag_accepted(self, tmp_path, collect):
        a = _write(tmp_path, "a.vhd", SEM_BAD)
        rc = main(["--root", str(tmp_path / "libs"),
                   "--explain-cycle", "compile", a], out=collect)
        assert rc == 1  # erroneous file still reported normally


class TestStatsJson:
    def test_stats_json_shape(self, collect):
        assert main(["stats", "--json"], out=collect) == 0
        data = json.loads(_json_blob(collect.lines))
        assert len(data["grammars"]) == 2
        for row in data["grammars"]:
            assert row["name"]
            assert row["productions"] > 0
            assert row["attributes"] > 0
            assert row["rules"] >= row["implicit_rules"]

    def test_stats_table_default(self, collect):
        assert main(["stats"], out=collect) == 0
        assert not any(l.lstrip().startswith("{")
                       for l in collect.lines)
