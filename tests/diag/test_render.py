"""Golden tests for the diagnostic renderers (text, JSON lines, SARIF)."""

import json

import pytest

from repro.diag import (
    CODE_PARSE,
    CODE_SEM,
    Diagnostic,
    ERROR,
    NOTE,
    SourceSpan,
    WARNING,
    render,
    render_jsonl,
    render_sarif,
    render_text,
    sarif_run,
)

SOURCE = """entity e is end e;
architecture a of e is
  signal s : no_such_type;
begin
end a;
"""


def sem_diag():
    return Diagnostic(
        CODE_SEM, ERROR, "'no_such_type' is not visible",
        span=SourceSpan("a.vhd", 3, 14, end_column=26),
        notes=["types must be declared before use"],
        related=[("architecture begins here",
                  SourceSpan("a.vhd", 2, 1))],
    )


class TestText:
    def test_caret_golden(self):
        text = render_text([sem_diag()], sources={"a.vhd": SOURCE})
        assert text == "\n".join([
            "a.vhd:3:14: error[SEM001]: 'no_such_type' is not visible",
            "    3 |   signal s : no_such_type;",
            "      |              ^^^^^^^^^^^^",
            "      note: types must be declared before use",
            "      related: a.vhd:2:1: architecture begins here",
        ])

    def test_caret_defaults_to_width_one(self):
        d = Diagnostic(CODE_SEM, ERROR, "x",
                       span=SourceSpan("a.vhd", 2, 1))
        text = render_text([d], sources={"a.vhd": SOURCE})
        lines = text.splitlines()
        assert lines[2].endswith("| ^")

    def test_missing_file_gives_header_only(self):
        d = Diagnostic(CODE_SEM, ERROR, "x",
                       span=SourceSpan("nonexistent.vhd", 2, 1))
        text = render_text([d])
        assert text == "nonexistent.vhd:2:1: error[SEM001]: x"

    def test_reads_from_disk(self, tmp_path):
        path = tmp_path / "d.vhd"
        path.write_text("line one\nline two\n")
        d = Diagnostic(CODE_SEM, ERROR, "x",
                       span=SourceSpan(str(path), 2, 6))
        text = render_text([d])
        assert "| line two" in text

    def test_spanless_diagnostic(self):
        d = Diagnostic(CODE_SEM, WARNING, "general gripe")
        assert render_text([d]) == "warning[SEM001]: general gripe"


class TestJsonLines:
    def test_one_object_per_line(self):
        d1 = sem_diag()
        d2 = Diagnostic(CODE_PARSE, ERROR, "bad",
                        span=SourceSpan("b.vhd", 1, 1))
        out = render_jsonl([d1, d2])
        lines = out.splitlines()
        assert len(lines) == 2
        objs = [json.loads(line) for line in lines]
        assert objs[0]["code"] == CODE_SEM
        assert objs[1]["span"]["file"] == "b.vhd"

    def test_roundtrips(self):
        obj = json.loads(render_jsonl([sem_diag()]))
        assert Diagnostic.from_dict(obj).span == sem_diag().span


class TestSarif:
    def run_of(self, diags):
        return sarif_run(diags)

    def test_top_level_shape(self):
        log = self.run_of([sem_diag()])
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro"
        assert "version" in driver
        assert driver["rules"][0]["id"] == CODE_SEM
        assert "shortDescription" in driver["rules"][0]

    def test_result_location(self):
        result = self.run_of([sem_diag()])["runs"][0]["results"][0]
        assert result["ruleId"] == CODE_SEM
        assert result["ruleIndex"] == 0
        assert result["level"] == "error"
        assert result["message"]["text"].startswith("'no_such_type'")
        phys = result["locations"][0]["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "a.vhd"
        assert phys["region"]["startLine"] == 3
        assert phys["region"]["startColumn"] == 14
        assert phys["region"]["endColumn"] == 26

    def test_related_and_notes(self):
        result = self.run_of([sem_diag()])["runs"][0]["results"][0]
        rel = result["relatedLocations"][0]
        assert rel["message"]["text"] == "architecture begins here"
        assert result["properties"]["notes"] == [
            "types must be declared before use"]

    def test_rules_deduplicated(self):
        diags = [sem_diag(), sem_diag(),
                 Diagnostic(CODE_PARSE, ERROR, "bad")]
        run = self.run_of(diags)["runs"][0]
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            CODE_SEM, CODE_PARSE]
        assert [r["ruleIndex"] for r in run["results"]] == [0, 0, 1]

    def test_severity_levels(self):
        diags = [Diagnostic(CODE_SEM, NOTE, "n"),
                 Diagnostic(CODE_SEM, WARNING, "w")]
        results = self.run_of(diags)["runs"][0]["results"]
        assert [r["level"] for r in results] == ["note", "warning"]

    def test_render_sarif_is_json(self):
        parsed = json.loads(render_sarif([sem_diag()]))
        assert parsed["version"] == "2.1.0"


class TestDispatch:
    def test_text(self):
        assert "error[SEM001]" in render([sem_diag()], "text")

    def test_json(self):
        assert json.loads(render([sem_diag()], "json"))["code"] == \
            CODE_SEM

    def test_sarif(self):
        assert json.loads(render([sem_diag()], "sarif"))["runs"]

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            render([], "xml")
