"""Diagnostic records, spans, and the collecting engine."""

import pytest

from repro.ag.errors import CircularityError, LexError, ParseError
from repro.diag import (
    CODE_CIRC,
    CODE_LEX,
    CODE_PARSE,
    CODE_SEM,
    Diagnostic,
    DiagnosticEngine,
    ERROR,
    SourceSpan,
    WARNING,
    parse_legacy_message,
)


class TestSourceSpan:
    def test_str_full(self):
        span = SourceSpan("a.vhd", 3, 14)
        assert str(span) == "a.vhd:3:14"

    def test_str_line_only(self):
        assert str(SourceSpan("a.vhd", 7)) == "a.vhd:7"

    def test_dict_roundtrip(self):
        span = SourceSpan("a.vhd", 3, 14, 3, 20)
        assert SourceSpan.from_dict(span.to_dict()) == span

    def test_dict_omits_none(self):
        assert SourceSpan("a.vhd", 2).to_dict() == {
            "file": "a.vhd", "line": 2}

    def test_from_token(self):
        class Tok:
            text = "entity"
            line = 4
            column = 3

        span = SourceSpan.from_token(Tok(), file="x.vhd")
        assert (span.line, span.column, span.end_column) == (4, 3, 9)

    def test_sort_key(self):
        spans = [SourceSpan("b", 1, 1), SourceSpan("a", 9, 9),
                 SourceSpan("a", 2, 5), SourceSpan("a", 2, 1)]
        ordered = sorted(spans, key=SourceSpan.sort_key)
        assert [str(s) for s in ordered] == [
            "a:2:1", "a:2:5", "a:9:9", "b:1:1"]


class TestDiagnostic:
    def test_str(self):
        d = Diagnostic(CODE_SEM, ERROR, "boom",
                       span=SourceSpan("f.vhd", 2, 7))
        assert str(d) == "f.vhd:2:7: error[SEM001]: boom"

    def test_dict_roundtrip(self):
        d = Diagnostic(CODE_SEM, WARNING, "careful",
                       span=SourceSpan("f.vhd", 2, 7),
                       notes=["a note"],
                       related=[("declared here",
                                 SourceSpan("g.vhd", 1, 1))])
        d2 = Diagnostic.from_dict(d.to_dict())
        assert d2.code == d.code
        assert d2.severity == d.severity
        assert d2.span == d.span
        assert d2.notes == ["a note"]
        assert d2.related[0][0] == "declared here"
        assert d2.related[0][1] == SourceSpan("g.vhd", 1, 1)


class TestLegacyParsing:
    def test_line_message(self):
        d = parse_legacy_message("line 12: no such signal", file="a.vhd")
        assert d.span.line == 12
        assert d.span.file == "a.vhd"
        assert d.message == "no such signal"
        assert d.code == CODE_SEM

    def test_line_column_message(self):
        d = parse_legacy_message("line 3:9: bad")
        assert (d.span.line, d.span.column) == (3, 9)

    def test_unanchored_message(self):
        d = parse_legacy_message("something odd", file="a.vhd")
        assert d.span.line is None
        assert d.message == "something odd"

    def test_internal_classified(self):
        d = parse_legacy_message("internal: the worst happened")
        assert d.code == "INT001"


class TestEngine:
    def test_collects_instead_of_raising(self):
        eng = DiagnosticEngine(file="a.vhd")
        eng.error(CODE_SEM, "first")
        eng.error(CODE_SEM, "second")
        assert len(eng) == 2
        assert eng.error_count == 2
        assert eng.has_errors

    def test_default_file_applied(self):
        eng = DiagnosticEngine(file="a.vhd")
        d = eng.error(CODE_SEM, "x", span=SourceSpan(line=4, column=2))
        assert d.span.file == "a.vhd"

    def test_werror_promotes(self):
        eng = DiagnosticEngine(werror=True)
        d = eng.warning(CODE_SEM, "iffy")
        assert d.severity == ERROR
        assert "[-Werror]" in d.message
        assert eng.error_count == 1

    def test_no_werror_keeps_warning(self):
        eng = DiagnosticEngine()
        eng.warning(CODE_SEM, "iffy")
        assert eng.warning_count == 1
        assert not eng.has_errors

    def test_max_errors_caps(self):
        eng = DiagnosticEngine(max_errors=2)
        for i in range(5):
            eng.error(CODE_SEM, "e%d" % i)
        assert len(eng) == 2
        assert eng.suppressed == 3
        assert "suppressed" in eng.summary()

    def test_add_messages_adapts_legacy(self):
        eng = DiagnosticEngine(file="a.vhd")
        eng.add_messages(["line 2: one", "line 5: two"])
        assert [d.span.line for d in eng] == [2, 5]

    def test_sorted_is_stable_by_span(self):
        eng = DiagnosticEngine()
        eng.error(CODE_SEM, "later", span=SourceSpan("a", 9, 1))
        eng.error(CODE_SEM, "earlier", span=SourceSpan("a", 2, 1))
        assert [d.message for d in eng.sorted()] == [
            "earlier", "later"]

    def test_summary(self):
        eng = DiagnosticEngine()
        eng.error(CODE_SEM, "x")
        eng.warning(CODE_SEM, "y")
        assert eng.summary() == "1 error(s), 1 warning(s)"
        assert DiagnosticEngine().summary() == "no diagnostics"


class TestExceptionAdapters:
    def test_parse_error_span(self):
        eng = DiagnosticEngine()
        exc = ParseError("unexpected SEMI", line=4, column=9,
                         file="b.vhd")
        d = eng.add_exception(exc)
        assert d.code == CODE_PARSE
        assert (d.span.file, d.span.line, d.span.column) == \
            ("b.vhd", 4, 9)
        assert d.message == "unexpected SEMI"  # unprefixed raw text

    def test_lex_error_span(self):
        eng = DiagnosticEngine()
        d = eng.add_exception(
            LexError("cannot scan '$'", line=2, column=3, file="c.vhd"))
        assert d.code == CODE_LEX
        assert d.span.line == 2

    def test_circularity_notes(self):
        eng = DiagnosticEngine(file="d.vhd")
        exc = CircularityError("circular", cycle=[])
        d = eng.add_exception(exc)
        assert d.code == CODE_CIRC

    def test_plain_exception(self):
        eng = DiagnosticEngine()
        d = eng.add_exception(ValueError("whoops"))
        assert d.code == "INT001"
        assert "whoops" in d.message


class TestParseErrorFormatting:
    def test_message_includes_file_line_column(self):
        exc = ParseError("bad", line=3, column=7, file="x.vhd")
        assert str(exc) == "x.vhd:3:7: bad"

    def test_message_without_file_keeps_legacy_shape(self):
        assert str(ParseError("bad", line=3)) == "line 3: bad"

    def test_lexer_reports_file(self):
        from repro.vhdl.lexer import scan

        with pytest.raises(LexError) as info:
            scan("entity e is\n $", "weird.vhd")
        assert info.value.file == "weird.vhd"
        assert info.value.line == 2

    def test_parser_reports_file(self):
        from repro.vhdl.grammar import principal_grammar
        from repro.vhdl.lexer import scan

        grammar = principal_grammar()
        with pytest.raises(ParseError) as info:
            grammar.parse(scan("entity e is end e\nentity", "f.vhd"),
                          "f.vhd")
        assert info.value.file == "f.vhd"
        assert info.value.line == 2
        assert info.value.column is not None
