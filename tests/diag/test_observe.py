"""AG observability: rule-firing counters, memo stats, cycle explanation."""

import pytest

from repro.ag import (
    AGSpec,
    CircularityError,
    INH,
    StaticEvaluator,
    SYN,
    Token,
)
from repro.diag import AGObserver, explain_cycle

from ..ag.calc_fixture import make_compiled, make_lexer


@pytest.fixture(scope="module")
def calc():
    return make_compiled()


@pytest.fixture(scope="module")
def lexer():
    return make_lexer()


class TestDynamicObserver:
    def test_counts_rule_firings(self, calc, lexer):
        obs = AGObserver()
        out = calc.run(lexer.scan("2 + 3 * 4"), inherited={"env": {}},
                       observer=obs)
        assert out["val"] == 14
        # each production fires once per instance per rule (the `val`
        # rule plus the implicit NODES merge rule both count)
        assert obs.rule_firings["e_add"] >= 1
        assert obs.rule_firings["t_mul"] >= 1
        assert obs.rule_firings["f_num"] >= 3
        assert obs.total_firings == sum(obs.rule_firings.values())
        assert obs.grammar_firings["calc"] == obs.total_firings

    def test_memo_hits_on_repeated_demand(self, calc, lexer):
        from repro.ag.evaluator import DynamicEvaluator

        obs = AGObserver()
        tree = calc.parse(lexer.scan("1 + 2"))
        evaluator = DynamicEvaluator(calc, {"env": {}}, observer=obs)
        evaluator.goal_attributes(tree)
        misses = obs.cache_misses
        assert misses > 0 and obs.cache_hits == 0
        evaluator.goal_attributes(tree)  # everything memoized now
        assert obs.cache_misses == misses
        assert obs.cache_hits > 0
        assert 0.0 < obs.hit_rate < 1.0

    def test_no_observer_is_default(self, calc, lexer):
        out = calc.run(lexer.scan("1 + 1"), inherited={"env": {}})
        assert out["val"] == 2


class TestStaticObserver:
    def test_counts_visits_and_firings(self, calc, lexer):
        obs = AGObserver()
        tree = calc.parse(lexer.scan("2 * (3 + 4)"))
        out = StaticEvaluator(calc, {"env": {}},
                              observer=obs).goal_attributes(tree)
        assert out["val"] == 14
        assert obs.total_firings > 0
        assert sum(obs.visits.values()) > 0
        assert "expr" in obs.visits


class TestAggregation:
    def test_merge_sums_counters(self):
        a, b = AGObserver(), AGObserver()
        a.rule_firings["p"] = 2
        a.cache_hits, a.cache_misses = 3, 1
        b.rule_firings["p"] = 1
        b.rule_firings["q"] = 5
        b.cache_hits, b.cache_misses = 1, 3
        a.merge(b)
        assert a.rule_firings == {"p": 3, "q": 5}
        assert (a.cache_hits, a.cache_misses) == (4, 4)
        assert a.hit_rate == 0.5

    def test_as_dict(self):
        obs = AGObserver()
        obs.record_hit()
        obs.record_miss()
        d = obs.as_dict()
        assert d["cache_hits"] == 1
        assert d["hit_rate"] == 0.5
        assert set(d) >= {"rule_firings", "total_firings", "visits"}

    def test_top_productions(self):
        obs = AGObserver()
        obs.rule_firings.update({"a": 5, "b": 9, "c": 1})
        assert obs.top_productions(2) == [("b", 9), ("a", 5)]

    def test_summary(self, calc, lexer):
        obs = AGObserver()
        calc.run(lexer.scan("1 + 2"), inherited={"env": {}},
                 observer=obs)
        text = obs.summary()
        assert "rule firing" in text
        assert "hit rate" in text
        assert "e_add" in text

    def test_hit_rate_empty(self):
        assert AGObserver().hit_rate == 0.0


def circular_grammar():
    """up <- down <- up: circular in every tree (runtime-detected)."""
    g = AGSpec("circ")
    g.terminals("A")
    g.nonterminal("s", ("x", SYN))
    g.nonterminal("t", ("down", INH), ("up", SYN))
    p = g.production("s_t", "s -> t")
    p.copy("s.x", "t.up")
    p.copy("t.down", "t.up")
    p = g.production("t_a", "t -> A")
    p.copy("t.up", "t.down")
    return g.finish()


class TestExplainCycle:
    def test_runtime_cycle_explained(self):
        compiled = circular_grammar()
        with pytest.raises(CircularityError) as info:
            compiled.run([Token("A", "a", line=7)])
        text = explain_cycle(info.value)
        assert text.startswith("circularity:")
        assert "attribute dependency cycle" in text
        assert "t.up" in text
        assert "t.down" in text
        assert "the cycle closes" in text
        # the demanded-while-computing arrows link the instances
        assert "demanded while computing" in text

    def test_empty_cycle(self):
        text = explain_cycle(CircularityError("c", cycle=[]))
        assert "(no cycle recorded)" in text
