"""Route-level tests for ServeApp, driven without sockets."""

import asyncio
import json

import pytest

from repro.serve.app import ServeApp
from repro.serve.http import PROMETHEUS_CONTENT_TYPE, Request

ENTITY = "entity e%d is end e%d;\n"

BLINK = """
entity blink is end blink;
architecture rtl of blink is
  signal led : bit := '0';
begin
  process
  begin
    led <= not led;
    wait for 10 ns;
  end process;
end rtl;
"""


def mkreq(method, path, body=None):
    payload = b"" if body is None else json.dumps(body).encode()
    return Request(method, path, {}, {}, payload)


def run(app, *requests):
    """Dispatch requests concurrently inside one event loop."""

    async def go():
        return await asyncio.gather(
            *(app.handle(r) for r in requests))

    return asyncio.run(go())


@pytest.fixture()
def app(tmp_path):
    instance = ServeApp(state_dir=str(tmp_path / "state"),
                        workers=2, batch_window=0.001)
    yield instance
    asyncio.run(instance.shutdown())


def body_of(response):
    return json.loads(response.body)


class TestBasicRoutes:
    def test_healthz(self, app):
        (resp,) = run(app, mkreq("GET", "/healthz"))
        assert resp.status == 200
        data = body_of(resp)
        assert data["ok"] is True
        assert data["draining"] is False

    def test_root_is_healthz(self, app):
        (resp,) = run(app, mkreq("GET", "/"))
        assert resp.status == 200
        assert body_of(resp)["ok"] is True

    def test_unknown_route_404(self, app):
        (resp,) = run(app, mkreq("GET", "/nope"))
        assert resp.status == 404

    def test_wrong_method_405(self, app):
        (resp,) = run(app, mkreq("GET", "/compile"))
        assert resp.status == 405

    def test_stats_route(self, app):
        (resp,) = run(app, mkreq("GET", "/stats"))
        data = body_of(resp)
        names = [g["name"] for g in data["grammars"]]
        assert "vhdl_principal" in names

    def test_metrics_route(self, app):
        run(app, mkreq("GET", "/healthz"))
        (resp,) = run(app, mkreq("GET", "/metrics"))
        assert resp.status == 200
        assert resp.content_type == PROMETHEUS_CONTENT_TYPE
        text = resp.body.decode()
        assert 'serve_requests_total{route="healthz",status="200"}' \
            in text
        assert "serve_uptime_seconds" in text
        assert "serve_request_seconds" in text


class TestSessions:
    def test_create_list_drop(self, app):
        (resp,) = run(app, mkreq("POST", "/session",
                                 {"session": "alice"}))
        assert resp.status == 201
        (resp,) = run(app, mkreq("GET", "/sessions"))
        assert "alice" in body_of(resp)["sessions"]
        (resp,) = run(app, mkreq("DELETE", "/session/alice"))
        assert resp.status == 200
        (resp,) = run(app, mkreq("DELETE", "/session/alice"))
        assert resp.status == 404

    def test_bad_session_id(self, app):
        (resp,) = run(app, mkreq("POST", "/session",
                                 {"session": "../evil"}))
        assert resp.status == 400

    def test_session_must_be_string(self, app):
        (resp,) = run(app, mkreq("POST", "/session", {"session": 7}))
        assert resp.status == 400


class TestCompileRoute:
    def test_requires_files(self, app):
        (resp,) = run(app, mkreq("POST", "/compile", {}))
        assert resp.status == 400
        (resp,) = run(app, mkreq("POST", "/compile", {"files": []}))
        assert resp.status == 400

    def test_bad_source_name(self, app):
        (resp,) = run(app, mkreq("POST", "/compile", {
            "files": [{"name": "../../etc/passwd", "text": ""}]}))
        assert resp.status == 400

    def test_invalid_json_body(self, app):
        (resp,) = run(app, Request("POST", "/compile", {}, {},
                                   b"{nope"))
        assert resp.status == 400

    def test_compile_ok(self, app):
        (resp,) = run(app, mkreq("POST", "/compile", {
            "files": [{"name": "e1.vhd", "text": ENTITY % (1, 1)}]}))
        assert resp.status == 200
        data = body_of(resp)
        assert data["ok"] is True
        assert data["kind"] == "compile"
        assert data["results"][0]["action"] == "compiled"
        assert ["work", "e1"] in data["results"][0]["units"]
        assert data["timing"]["batch_jobs"] >= 1

    def test_compile_error_reported_per_file(self, app):
        (resp,) = run(app, mkreq("POST", "/compile", {
            "files": [{"name": "bad.vhd",
                       "text": "entity broken is"}]}))
        assert resp.status == 200
        data = body_of(resp)
        assert data["ok"] is False
        assert data["results"][0]["action"] == "failed"
        assert data["results"][0]["messages"]

    def test_concurrent_compiles_share_one_batch(self, app):
        reqs = [mkreq("POST", "/compile", {
            "files": [{"name": "e%d.vhd" % i,
                       "text": ENTITY % (i, i)}]})
            for i in range(4)]
        responses = run(app, *reqs)
        for resp in responses:
            assert body_of(resp)["ok"] is True
        batches = app.registry.get("serve_batches_total")
        assert batches.value == 1
        # ... and each job only saw its own files.
        for i, resp in enumerate(responses):
            data = body_of(resp)
            assert [r["path"] for r in data["results"]] \
                == ["e%d.vhd" % i]
            assert data["timing"]["batch_files"] == 4


class TestSimRoute:
    def test_requires_top(self, app):
        (resp,) = run(app, mkreq("POST", "/sim", {}))
        assert resp.status == 400

    def test_bad_until(self, app):
        (resp,) = run(app, mkreq("POST", "/sim",
                                 {"top": "x", "until": "one parsec"}))
        assert resp.status == 400

    def test_unknown_top_is_job_failure_not_500(self, app):
        (resp,) = run(app, mkreq("POST", "/sim", {"top": "ghost"}))
        assert resp.status == 200
        data = body_of(resp)
        assert data["ok"] is False
        assert "ghost" in data["error"]

    def test_compile_then_sim(self, app):
        responses = run(
            app,
            mkreq("POST", "/compile", {
                "session": "s1",
                "files": [{"name": "blink.vhd", "text": BLINK}]}))
        assert body_of(responses[0])["ok"] is True
        (resp,) = run(app, mkreq("POST", "/sim", {
            "session": "s1", "top": "blink", "until": "25ns"}))
        data = body_of(resp)
        assert data["ok"] is True
        assert data["cycles"] > 0
        assert data["report_lines"][0].startswith(
            "simulation stopped at 25 ns")

    # ``wait on`` (not ``wait for``): timeout waits stay generic, so
    # this variant actually exercises the specialized dispatch.
    TICKER = """
    entity blink is end blink;
    architecture rtl of blink is
      signal led : bit := '0';
    begin
      process
      begin
        led <= not led after 10 ns;
        wait on led;
      end process;
    end rtl;
    """

    def test_sim_backend_compiled(self, app):
        run(app, mkreq("POST", "/compile", {
            "session": "sc", "files": [
                {"name": "blink.vhd", "text": self.TICKER}]}))
        event, compiled = run(
            app,
            mkreq("POST", "/sim", {"session": "sc", "top": "blink",
                                   "until": "25ns"}),
            mkreq("POST", "/sim", {"session": "sc", "top": "blink",
                                   "until": "25ns",
                                   "backend": "compiled"}))
        ev, co = body_of(event), body_of(compiled)
        assert ev["ok"] and co["ok"]
        assert ev["backend"] == "event"
        assert co["backend"] == "compiled"
        assert co["codegen"]["compiled_procs"] >= 1
        # Semantics are backend-independent.
        assert co["cycles"] == ev["cycles"]
        assert co["delta_cycles"] == ev["delta_cycles"]

    def test_sim_bad_backend(self, app):
        (resp,) = run(app, mkreq("POST", "/sim",
                                 {"top": "x",
                                  "backend": "turbo"}))
        assert resp.status == 400


class TestLintRoute:
    def test_lint_posted_files(self, app):
        (resp,) = run(app, mkreq("POST", "/lint", {
            "files": [{"name": "e.vhd",
                       "text": "entity e is end e;"}]}))
        data = body_of(resp)
        assert data["kind"] == "lint"
        assert data["findings"] == 0

    def test_lint_session_library(self, app):
        run(app, mkreq("POST", "/compile", {
            "session": "lintme",
            "files": [{"name": "blink.vhd", "text": BLINK}]}))
        (resp,) = run(app, mkreq("POST", "/lint",
                                 {"session": "lintme"}))
        data = body_of(resp)
        assert resp.status == 200
        assert "findings_jsonl" in data


LOOP_DESIGN = """
entity inv is
  port (a : in bit; b : out bit);
end inv;
architecture rtl of inv is
begin
  b <= not a;
end rtl;

entity looptop is
end looptop;
architecture top of looptop is
  component inv
    port (a : in bit; b : out bit);
  end component;
  signal x, y : bit;
begin
  u1 : inv port map (a => x, b => y);
  u2 : inv port map (a => y, b => x);
end top;
"""


class TestAnalyzeRoute:
    def test_analyze_posted_files_finds_the_loop(self, app):
        (resp,) = run(app, mkreq("POST", "/analyze", {
            "files": [{"name": "loop.vhd", "text": LOOP_DESIGN}]}))
        data = body_of(resp)
        assert resp.status == 200
        assert data["kind"] == "analyze"
        assert data["ok"] is False
        assert data["top"] == "looptop"
        assert data["findings"] >= 1
        codes = [json.loads(line)["code"] for line in
                 data["findings_jsonl"].splitlines()]
        assert "RPE001" in codes
        assert data["levels"]["schema"] == "repro-levels/1"
        assert data["levels"]["cyclic"] == \
            [":looptop:x", ":looptop:y"]

    def test_analyze_session_library(self, app):
        run(app, mkreq("POST", "/compile", {
            "session": "anlz",
            "files": [{"name": "blink.vhd", "text": BLINK}]}))
        (resp,) = run(app, mkreq("POST", "/analyze",
                                 {"session": "anlz",
                                  "top": "blink"}))
        data = body_of(resp)
        assert resp.status == 200
        assert data["ok"] is True
        assert "levels" in data

    def test_analyze_without_files_needs_top(self, app):
        (resp,) = run(app, mkreq("POST", "/analyze", {
            "session": "anlz2"}))
        data = body_of(resp)
        assert data["ok"] is False
        assert "top" in data["error"]

    def test_analyze_select_filters_rules(self, app):
        (resp,) = run(app, mkreq("POST", "/analyze", {
            "files": [{"name": "loop.vhd", "text": LOOP_DESIGN}],
            "select": ["RPE004"]}))
        data = body_of(resp)
        codes = {json.loads(line)["code"] for line in
                 data["findings_jsonl"].splitlines()}
        assert codes <= {"RPE004"}

    def test_analyze_rejects_get(self, app):
        (resp,) = run(app, mkreq("GET", "/analyze"))
        assert resp.status == 405


class TestDraining:
    def test_draining_rejects_new_jobs(self, app):
        app.draining = True
        (resp,) = run(app, mkreq("POST", "/compile", {
            "files": [{"name": "e.vhd",
                       "text": "entity e is end e;"}]}))
        assert resp.status == 503
        (resp,) = run(app, mkreq("GET", "/healthz"))
        assert resp.status == 200
        assert body_of(resp)["draining"] is True


class TestMetricsBookkeeping:
    def test_requests_counted_by_route_and_status(self, app):
        run(app, mkreq("GET", "/healthz"))
        run(app, mkreq("GET", "/nope"))
        family = app.registry.get("serve_requests_total")
        values = {labels: child.value
                  for labels, child in family._children.items()}
        assert values[(("route", "healthz"),
                       ("status", "200"))] == 1
        assert values[(("route", "other"),
                       ("status", "404"))] == 1
        assert app.total_requests() == 2

    def test_inflight_settles_to_zero(self, app):
        run(app, mkreq("GET", "/healthz"))
        assert app.registry.get("serve_inflight").value == 0
