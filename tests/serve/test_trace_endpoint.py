"""End-to-end causal tracing over the wire.

The PR's acceptance test: one compile + sim exchange, stitched by the
client sending the same ``traceparent`` on both requests, produces ONE
connected span tree — every ``parent_id`` resolves inside the set or
at the client's root span — crossing the server process, a fork
worker, and the kernel run.
"""

import http.client
import json
import os

import pytest

from repro.build.scheduler import _fork_available
from repro.serve import BackgroundServer
from repro.trace import SpanContext

COUNTER = """
entity ticker is end ticker;
architecture rtl of ticker is
  signal n : integer := 0;
begin
  process
  begin
    n <= n + 1;
    wait for 10 ns;
  end process;
end rtl;
"""

FILLER = """entity pad%(n)d is end pad%(n)d;
architecture a of pad%(n)d is
  signal x : integer := %(n)d;
begin
end a;
"""


def request(port, method, path, body=None, headers=None,
            timeout=120):
    """Like the basic helper but returns response headers too."""
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload,
                     headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def request_json(port, method, path, body=None, headers=None):
    status, resp_headers, raw = request(port, method, path, body,
                                        headers)
    return status, resp_headers, json.loads(raw)


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2, batch_window=0.005) as handle:
        yield handle


def compile_and_sim(port, headers, session):
    """One compile (3 files, so the batch forks) and one sim."""
    files = [{"name": "ticker.vhd", "text": COUNTER}]
    for i in (1, 2):
        files.append({"name": "pad%d.vhd" % i,
                      "text": FILLER % {"n": i}})
    status, resp_headers, data = request_json(
        port, "POST", "/compile",
        {"session": session, "files": files}, headers=headers)
    assert status == 200 and data["ok"] is True, data
    first = resp_headers
    status, resp_headers, data = request_json(
        port, "POST", "/sim",
        {"session": session, "top": "ticker", "until": "500ns"},
        headers=headers)
    assert status == 200 and data["ok"] is True, data
    return first, resp_headers


class TestOneConnectedTree:
    def test_compile_sim_exchange_is_one_tree(self, server):
        client = SpanContext()
        headers = {"traceparent": client.to_traceparent()}
        first, second = compile_and_sim(server.port, headers,
                                        "trace-e2e")
        # Both responses echo a traceparent in the client's trace.
        for resp_headers in (first, second):
            remote = SpanContext.from_traceparent(
                resp_headers.get("traceparent"))
            assert remote is not None
            assert remote.trace_id == client.trace_id

        status, _, data = request_json(
            server.port, "GET",
            "/trace?trace_id=" + client.trace_id)
        assert status == 200 and data["ok"] is True
        spans = [e for e in data["spans"] if e.get("ph") == "X"]
        assert spans, "trace ring must hold this trace's spans"

        # One connected tree: every parent resolves inside the set,
        # except the two request roots which hang off the client span.
        ids = {e["span_id"] for e in spans}
        dangling = set()
        for event in spans:
            assert event["trace_id"] == client.trace_id
            parent = event.get("parent_id")
            assert parent, "no span may float unparented: %r" % event
            if parent not in ids:
                dangling.add(parent)
        assert dangling == {client.span_id}

        names = {e["name"] for e in spans}
        # The full causal path: HTTP request -> batch -> worker
        # compile -> sim phases -> kernel timestep.
        for expected in ("request", "queue_wait", "compile_batch",
                         "compile_file", "sim", "elaborate",
                         "kernel_run", "timestep"):
            assert expected in names, (expected, sorted(names))

        pids = {e["pid"] for e in spans}
        if _fork_available():
            # server process + >= 2 fork workers for the 3-file batch
            assert len(pids) >= 3, pids

    def test_trace_filter_excludes_other_traces(self, server):
        mine = SpanContext()
        theirs = SpanContext()
        for ctx, session in ((mine, "trace-mine"),
                             (theirs, "trace-theirs")):
            compile_and_sim(server.port,
                            {"traceparent": ctx.to_traceparent()},
                            session)
        status, _, data = request_json(
            server.port, "GET", "/trace?trace_id=" + mine.trace_id)
        assert status == 200
        got = {e.get("trace_id") for e in data["spans"]}
        assert got == {mine.trace_id}

    def test_unfiltered_trace_dump(self, server):
        status, _, data = request_json(server.port, "GET", "/trace")
        assert status == 200 and data["ok"] is True
        assert data["count"] == len(data["spans"]) > 0
        assert data["dropped"] >= 0


class TestTraceparentRobustness:
    @pytest.mark.parametrize("bad", [
        "not-a-traceparent",
        "00-zzzz-zzzz-01",
        "00-" + "0" * 32 + "-" + "0" * 16 + "-01",
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",
    ])
    def test_malformed_header_never_fails_a_request(self, server,
                                                    bad):
        status, resp_headers, data = request_json(
            server.port, "GET", "/healthz",
            headers={"traceparent": bad})
        assert status == 200 and data["ok"] is True
        # The server starts a fresh trace instead.
        remote = SpanContext.from_traceparent(
            resp_headers.get("traceparent"))
        assert remote is not None

    def test_absent_header_starts_fresh_trace(self, server):
        _, h1, _ = request_json(server.port, "GET", "/healthz")
        _, h2, _ = request_json(server.port, "GET", "/healthz")
        c1 = SpanContext.from_traceparent(h1.get("traceparent"))
        c2 = SpanContext.from_traceparent(h2.get("traceparent"))
        assert c1 is not None and c2 is not None
        assert c1.trace_id != c2.trace_id
