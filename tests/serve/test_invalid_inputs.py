"""Socket-level hardening: generated invalid inputs through
``/compile`` must come back as structured JSONL diagnostics with a
non-500 status — never a raw traceback through the service."""

import http.client
import json

import pytest

from repro.gen import generate_for
from repro.serve import BackgroundServer


def request(port, method, path, body=None, raw=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout)
    try:
        payload = raw if raw is not None else (
            None if body is None else json.dumps(body))
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def parse_jsonl(text):
    return [json.loads(line) for line in text.splitlines() if line]


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2, batch_window=0.005) as handle:
        yield handle


def _invalid_designs(count=3):
    """Generated designs carrying a deliberate invalid injection."""
    found = []
    for i in range(400):
        design = generate_for(13, i)
        if any(f.startswith("invalid") for f in design.features):
            found.append(design)
            if len(found) == count:
                break
    assert found, "no invalid injections found"
    return found


class TestGeneratedInvalidInputs:
    def test_rejections_are_structured_and_non_500(self, server):
        for k, design in enumerate(_invalid_designs()):
            status, data = request(
                server.port, "POST", "/compile",
                {"session": "inv%d" % k,
                 "files": [{"name": "bad%d.vhd" % k,
                            "text": design.source}]})
            assert status != 500, data
            assert data["ok"] is False
            diags = parse_jsonl(data["diagnostics_jsonl"])
            assert diags, data
            for diag in diags:
                assert diag["code"]
                assert diag["severity"]
                assert diag["message"]
            assert "Traceback" not in json.dumps(data)

    def test_garbage_bytes_compile(self, server):
        status, data = request(
            server.port, "POST", "/compile",
            {"session": "garbage",
             "files": [{"name": "junk.vhd",
                        "text": "@#$% entity ;; architecture"}]})
        assert status != 500
        assert data["ok"] is False
        assert parse_jsonl(data["diagnostics_jsonl"])

    def test_truncated_generated_design(self, server):
        design = generate_for(7, 0)
        # Cut inside the final unit so the tail is always dangling.
        lines = design.source.splitlines()
        truncated = "\n".join(lines[:len(lines) - 2])
        status, data = request(
            server.port, "POST", "/compile",
            {"session": "trunc",
             "files": [{"name": "cut.vhd", "text": truncated}]})
        assert status != 500
        assert data["ok"] is False
        assert parse_jsonl(data["diagnostics_jsonl"])


class TestMalformedRequests:
    def test_bad_file_entry_is_400_with_diagnostics(self, server):
        status, data = request(
            server.port, "POST", "/compile",
            {"files": [{"name": "../escape.vhd", "text": ""}]})
        assert status == 400
        diags = parse_jsonl(data["diagnostics_jsonl"])
        assert diags and diags[0]["code"] == "SRV001"

    def test_missing_text_is_400_with_diagnostics(self, server):
        status, data = request(
            server.port, "POST", "/compile",
            {"files": [{"name": "a.vhd"}]})
        assert status == 400
        assert parse_jsonl(data["diagnostics_jsonl"])

    def test_non_json_body_is_400_with_diagnostics(self, server):
        status, data = request(server.port, "POST", "/compile",
                               raw="this is not json")
        assert status == 400
        assert parse_jsonl(data["diagnostics_jsonl"])

    def test_unknown_route_is_404_with_diagnostics(self, server):
        status, data = request(server.port, "GET", "/nope")
        assert status == 404
        assert parse_jsonl(data["diagnostics_jsonl"])

    def test_valid_design_still_round_trips(self, server):
        design = generate_for(7, 1)
        status, data = request(
            server.port, "POST", "/compile",
            {"session": "good",
             "files": [{"name": "good.vhd",
                        "text": design.source}]})
        assert status == 200
        assert data["ok"] is True, data
        status, data = request(
            server.port, "POST", "/sim",
            {"session": "good", "top": design.top,
             "until": "%dns" % design.until_ns})
        assert status == 200
        assert data["ok"] is True, data
