"""Unit tests for the dependency-free HTTP transport."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HTTPError,
    MAX_BODY_BYTES,
    Request,
    Response,
    read_request,
)


def parse(data):
    """Run read_request over a pre-fed stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_post_with_body(self):
        body = json.dumps({"a": 1}).encode()
        raw = (b"POST /compile HTTP/1.1\r\n"
               b"Content-Length: %d\r\n\r\n" % len(body)) + body
        req = parse(raw)
        assert req.method == "POST"
        assert req.json() == {"a": 1}

    def test_query_string(self):
        req = parse(b"GET /stats?fmt=json&n=1&n=2 HTTP/1.1\r\n\r\n")
        assert req.path == "/stats"
        assert req.query == {"fmt": ["json"], "n": ["1", "2"]}

    def test_percent_encoded_path(self):
        req = parse(b"GET /session/a%2Db HTTP/1.1\r\n\r\n")
        assert req.path == "/session/a-b"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"GET / HTTP/1.1\r\nHost")
        assert exc.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_body_rejected(self):
        raw = (b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
               % (MAX_BODY_BYTES + 1))
        with pytest.raises(HTTPError) as exc:
            parse(raw)
        assert exc.value.status == 413

    def test_truncated_body(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert exc.value.status == 400

    def test_chunked_rejected(self):
        with pytest.raises(HTTPError) as exc:
            parse(b"POST / HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert exc.value.status == 400

    def test_two_keepalive_requests_one_stream(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET /a HTTP/1.1\r\n\r\n"
                             b"GET /b HTTP/1.1\r\n\r\n")
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = asyncio.run(go())
        assert first.path == "/a"
        assert second.path == "/b"
        assert third is None


class TestRequestJSON:
    def test_empty_body_is_empty_object(self):
        req = Request("POST", "/", {}, {}, b"")
        assert req.json() == {}

    def test_invalid_json(self):
        req = Request("POST", "/", {}, {}, b"{nope")
        with pytest.raises(HTTPError) as exc:
            req.json()
        assert exc.value.status == 400

    def test_non_object_json(self):
        req = Request("POST", "/", {}, {}, b"[1, 2]")
        with pytest.raises(HTTPError) as exc:
            req.json()
        assert exc.value.status == 400


class TestResponse:
    def test_encode_roundtrip(self):
        raw = Response.json({"ok": True}).encode()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert b"Content-Length: %d" % len(body) in head
        assert json.loads(body) == {"ok": True}

    def test_keep_alive_header(self):
        assert b"Connection: keep-alive" in Response.json({}).encode(True)
        assert b"Connection: close" in Response.json({}).encode(False)

    def test_error_shape(self):
        resp = Response.error(404, "gone")
        assert resp.status == 404
        data = json.loads(resp.body)
        assert data == {"ok": False, "error": "gone", "status": 404}

    def test_text_content_type(self):
        resp = Response.text("hi", content_type="text/plain; v=1")
        assert resp.content_type == "text/plain; v=1"
        assert resp.body == b"hi"
