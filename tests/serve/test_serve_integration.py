"""Socket-level integration tests: a real ``repro serve`` instance.

Covers the PR's acceptance criteria: >= 8 concurrent mixed
compile/lint/sim requests with per-request isolation, a differential
check that served results are byte-identical to the one-shot CLI, and
a valid live Prometheus exposition including the ``serve_*`` series.
"""

import http.client
import json
import re
import socket
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.serve import BackgroundServer

COUNTER = """
entity counter%(n)d is end counter%(n)d;
architecture rtl of counter%(n)d is
  signal n : integer := %(n)d;
begin
  process
  begin
    n <= n + %(n)d;
    wait for 10 ns;
  end process;
end rtl;
"""

BLINK = """
entity blink is end blink;
architecture rtl of blink is
  signal led : bit := '0';
  signal n : integer := 0;
begin
  process
  begin
    led <= not led;
    n <= n + 1;
    wait for 10 ns;
  end process;
end rtl;
"""


def request(port, method, path, body=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def request_json(port, method, path, body=None):
    status, raw = request(port, method, path, body)
    return status, json.loads(raw)


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2, batch_window=0.005) as handle:
        yield handle


class TestServerBasics:
    def test_healthz_over_socket(self, server):
        status, data = request_json(server.port, "GET", "/healthz")
        assert status == 200
        assert data["ok"] is True

    def test_keep_alive_connection_reuse(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()

    def test_malformed_request_gets_400(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30) as sock:
            sock.sendall(b"BOGUS\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")


class TestDifferentialVsCLI:
    """Served results must be byte-identical to the one-shot CLI."""

    def test_sim_report_matches_cli(self, server, tmp_path):
        # One-shot CLI: compile + simulate into a scratch root.
        src = tmp_path / "blink.vhd"
        src.write_text(BLINK)
        root = str(tmp_path / "libs")
        cli_lines = []

        def out(text=""):
            cli_lines.append(str(text))

        assert main(["--root", root, "build", str(src)],
                    out=lambda *_: None) == 0
        assert main(["--root", root, "simulate", "blink",
                     "--until", "95ns"], out=out) == 0

        # Same design through the service.
        status, data = request_json(
            server.port, "POST", "/compile",
            {"session": "diff",
             "files": [{"name": "blink.vhd", "text": BLINK}]})
        assert status == 200 and data["ok"] is True
        status, data = request_json(
            server.port, "POST", "/sim",
            {"session": "diff", "top": "blink", "until": "95ns"})
        assert status == 200 and data["ok"] is True
        assert data["report_lines"] == cli_lines

    def test_compile_units_match_cli_build(self, server, tmp_path):
        source = COUNTER % {"n": 7}
        src = tmp_path / "counter7.vhd"
        src.write_text(source)
        root = str(tmp_path / "libs")
        assert main(["--root", root, "build", str(src)],
                    out=lambda *_: None) == 0
        from repro.build.cache import BuildCache

        cache = BuildCache(root).load()
        cli_units = sorted(tuple(u) for u in cache.compile_order)

        status, data = request_json(
            server.port, "POST", "/compile",
            {"session": "diff2",
             "files": [{"name": "counter7.vhd", "text": source}]})
        assert status == 200 and data["ok"] is True
        served_units = sorted(
            tuple(u) for r in data["results"] for u in r["units"])
        assert served_units == cli_units


class TestConcurrentMixedLoad:
    def test_eight_concurrent_mixed_requests(self, server):
        """>= 8 in-flight mixed jobs, each isolated per session."""
        port = server.port
        # Prime two sessions with a design the sims will target.
        for sid in ("mix-a", "mix-b"):
            status, data = request_json(
                port, "POST", "/compile",
                {"session": sid,
                 "files": [{"name": "blink.vhd", "text": BLINK}]})
            assert status == 200 and data["ok"] is True

        jobs = []
        for i in range(4):  # 4 compiles in 4 distinct sessions
            jobs.append(("POST", "/compile", {
                "session": "mix-c%d" % i,
                "files": [{"name": "counter%d.vhd" % (i + 1),
                           "text": COUNTER % {"n": i + 1}}]}))
        for sid in ("mix-a", "mix-b"):  # 2 sims
            jobs.append(("POST", "/sim", {
                "session": sid, "top": "blink", "until": "50ns"}))
        jobs.append(("POST", "/lint", {  # 2 lints
            "files": [{"name": "e.vhd",
                       "text": "entity e is end e;"}]}))
        jobs.append(("POST", "/lint", {"session": "mix-a"}))
        assert len(jobs) >= 8

        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            results = list(pool.map(
                lambda job: request_json(port, *job), jobs))

        for (method, path, body), (status, data) in zip(jobs,
                                                        results):
            assert status == 200, (path, data)

        # Compile isolation: each response covers only its own file
        # and registered only its own entity.
        for i in range(4):
            status, data = results[i]
            assert data["ok"] is True, data
            assert [r["path"] for r in data["results"]] \
                == ["counter%d.vhd" % (i + 1)]
            flat = [tuple(u) for r in data["results"]
                    for u in r["units"]]
            assert ("work", "counter%d" % (i + 1)) in flat
        # Sim isolation: both sims ran the blink design to 50 ns.
        for status, data in results[4:6]:
            assert data["ok"] is True
            assert data["report_lines"][0].startswith(
                "simulation stopped at 50 ns")
        # Lints resolved.
        assert results[6][1]["kind"] == "lint"
        assert results[7][1]["kind"] == "lint"

    def test_session_work_libraries_do_not_leak(self, server):
        """A unit compiled in one session is invisible to another."""
        status, data = request_json(
            server.port, "POST", "/compile",
            {"session": "leak-src",
             "files": [{"name": "secret.vhd",
                        "text": "entity secret is end secret;"}]})
        assert status == 200 and data["ok"] is True
        status, data = request_json(
            server.port, "POST", "/sim",
            {"session": "leak-dst", "top": "secret"})
        assert status == 200
        assert data["ok"] is False


class TestMetricsExposition:
    SAMPLE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r" [0-9.eE+-]+(nan|inf)?$")

    def test_live_exposition_is_valid(self, server):
        status, raw = request(server.port, "GET", "/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        helped, typed = set(), set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
            elif line.startswith("# TYPE "):
                typed.add(line.split()[2])
            elif line.startswith("# exemplar "):
                # Slowest-observation exemplars ride as comments
                # (text format 0.0.4 has no native syntax for them).
                assert "trace_id=" in line and "value=" in line, line
            elif line:
                assert self.SAMPLE.match(line), line
        # Every serve_* family the PR promises is present and typed.
        for family in ("serve_requests_total", "serve_inflight",
                       "serve_request_seconds",
                       "serve_uptime_seconds", "serve_jobs_total",
                       "serve_batches_total"):
            assert any(t == family or t.startswith(family)
                       for t in typed), family
        assert helped  # HELP lines rendered too

    def test_job_counters_grow(self, server):
        def scrape():
            _, raw = request(server.port, "GET", "/metrics")
            counts = {}
            for line in raw.decode().splitlines():
                if line.startswith("serve_jobs_total{"):
                    name, _, value = line.rpartition(" ")
                    counts[name] = float(value)
            return counts

        before = scrape()
        status, data = request_json(
            server.port, "POST", "/sim",
            {"session": "mix-a", "top": "blink", "until": "10ns"})
        assert status == 200
        after = scrape()
        key = 'serve_jobs_total{kind="sim"}'
        assert after.get(key, 0) == before.get(key, 0) + 1


class TestGracefulShutdown:
    def test_stop_drains_and_frees_the_port(self):
        handle = BackgroundServer(workers=2)
        port = handle.port
        status, data = request_json(
            port, "POST", "/compile",
            {"files": [{"name": "e.vhd",
                        "text": "entity e is end e;"}]})
        assert status == 200 and data["ok"] is True
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port),
                                     timeout=2).close()
