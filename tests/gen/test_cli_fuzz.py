"""The ``repro fuzz`` command: exit codes, formats, corpus dumps."""

import json

import pytest

from repro.cli import main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(l) for l in lines)


class TestFuzzCommand:
    def test_clean_sweep_exits_zero(self):
        code, text = run_cli(
            ["fuzz", "--seed", "7", "--budget", "6"])
        assert code == 0
        assert "seed=7 budget=6" in text
        assert "FAIL" not in text

    def test_json_format_is_an_envelope(self):
        code, text = run_cli(
            ["fuzz", "--seed", "7", "--budget", "4",
             "--format", "json"])
        assert code == 0
        env = json.loads(text)
        assert env["schema"] == "repro-metrics/1"
        assert env["kind"] == "fuzz-report"
        assert len(env["designs"]) == 4

    def test_analyze_flag_keeps_sweep_clean_and_deterministic(self):
        code, text = run_cli(
            ["fuzz", "--seed", "7", "--budget", "6", "--analyze",
             "--format", "json"])
        assert code == 0
        env = json.loads(text)
        assert [d["outcome"] for d in env["designs"]] == ["ok"] * 6
        # The analyzer leg must not perturb the design stream: the
        # same seed without --analyze sees the same designs.
        _, plain = run_cli(
            ["fuzz", "--seed", "7", "--budget", "6",
             "--format", "json"])
        plain_env = json.loads(plain)
        assert [d["features"] for d in env["designs"]] == \
            [d["features"] for d in plain_env["designs"]]

    def test_bad_budget_is_usage_error(self):
        code, text = run_cli(["fuzz", "--budget", "0"])
        assert code == 2

    def test_metrics_flag_prints_fuzz_families(self):
        code, text = run_cli(
            ["fuzz", "--seed", "7", "--budget", "3", "--metrics"])
        assert code == 0
        assert "fuzz_designs_total" in text

    def test_jobs_flag_matches_serial_output(self):
        code1, text1 = run_cli(
            ["fuzz", "--seed", "11", "--budget", "6",
             "--format", "json"])
        code4, text4 = run_cli(
            ["fuzz", "--seed", "11", "--budget", "6", "--jobs", "4",
             "--format", "json"])
        assert code1 == code4 == 0
        a, b = json.loads(text1), json.loads(text4)
        for env in (a, b):
            env.pop("elapsed_seconds")
            env.pop("designs_per_second")
            env.pop("generated_at", None)
            env["jobs"] = 0
        assert a == b

    def test_failure_exits_one_and_dumps_corpus(self, tmp_path,
                                                monkeypatch):
        from repro.gen import runner as runner_mod

        def fake_task(seed, index, analyze=False, compiled=False):
            from repro.gen import generate_for
            design = generate_for(seed, index)
            return {
                "index": index, "outcome": "divergence",
                "detail": "synthetic divergence",
                "features": list(design.features),
                "lines": design.lines,
                "choices": list(design.choices),
                "lint_findings": 0, "seconds": 0.0,
            }

        monkeypatch.setattr(runner_mod, "fuzz_task", fake_task)
        corpus_dir = str(tmp_path / "corpus")
        code, text = run_cli(
            ["fuzz", "--seed", "7", "--budget", "1", "--no-shrink",
             "--corpus", corpus_dir])
        assert code == 1
        assert "FAIL design 0 [divergence]" in text
        assert "replay: repro fuzz --seed 7 --budget 1" in text

    def test_minimized_failure_written_to_corpus(self, tmp_path,
                                                 monkeypatch):
        from repro.gen import runner as runner_mod
        real_check = runner_mod.check_design

        def fake_check(design, analyze=False, compiled=False):
            result = real_check(design)
            if "package" in design.features:
                result.outcome = "divergence"
                result.detail = "synthetic: package"
            return result

        def fake_task(seed, index, analyze=False, compiled=False):
            from repro.gen import generate_for
            design = generate_for(seed, index)
            result = fake_check(design)
            return {
                "index": index, "outcome": result.outcome,
                "detail": result.detail,
                "features": list(design.features),
                "lines": design.lines,
                "choices": list(design.choices),
                "lint_findings": 0, "seconds": 0.0,
            }

        monkeypatch.setattr(runner_mod, "check_design", fake_check)
        monkeypatch.setattr(runner_mod, "fuzz_task", fake_task)
        corpus_dir = str(tmp_path / "corpus")
        # seed 7 index 0 has a package; budget 1 keeps this quick.
        code, text = run_cli(
            ["fuzz", "--seed", "7", "--budget", "1",
             "--corpus", corpus_dir])
        if code == 0:
            pytest.skip("seed 7 design 0 grew out of its package")
        assert "minimized to" in text
        files = list((tmp_path / "corpus").glob("*.vhd"))
        assert files, "corpus dump expected"
        body = files[0].read_text()
        assert body.startswith("-- repro-fuzz:")
        assert "UNFIXED" in body
