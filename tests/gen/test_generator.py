"""Generator determinism and structural invariants."""

from repro.gen import generate_for, replay
from repro.gen.grammar import UNTIL_CHOICES
from repro.gen.tape import DecisionTape
from repro.gen.grammar import generate_design


class TestDeterminism:
    def test_same_seed_index_byte_identical(self):
        a = generate_for(7, 3)
        b = generate_for(7, 3)
        assert a.source == b.source
        assert a.top == b.top
        assert a.until_ns == b.until_ns
        assert a.choices == b.choices

    def test_generation_order_is_irrelevant(self):
        forward = [generate_for(7, i).source for i in range(10)]
        backward = [generate_for(7, i).source
                    for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_distinct_indices_distinct_designs(self):
        sources = {generate_for(7, i).source for i in range(20)}
        assert len(sources) > 15

    def test_replay_of_recorded_choices_reproduces(self):
        design = generate_for(11, 5)
        again = replay(design.choices, seed=11, index=5)
        assert again.source == design.source
        assert again.top == design.top

    def test_zero_tape_yields_minimal_valid_design(self):
        design = replay([])
        assert "entity fz_top is" in design.source
        assert design.top == "fz_top"
        assert not any(f.startswith("invalid")
                       for f in design.features)


class TestStructure:
    def test_every_design_has_a_bench(self):
        for i in range(30):
            design = generate_for(3, i)
            assert "architecture bench of fz_top is" in design.source
            assert design.until_ns in UNTIL_CHOICES
            assert design.lines > 10

    def test_config_unit_designs_elaborate_the_config(self):
        seen = False
        for i in range(60):
            design = generate_for(3, i)
            if "config_unit" in design.features:
                seen = True
                assert design.top == "fz_cfg"
                assert "configuration fz_cfg of fz_top" \
                    in design.source
            else:
                assert design.top == "fz_top"
        assert seen, "config units should appear within 60 designs"

    def test_feature_space_is_exercised(self):
        seen = set()
        for i in range(150):
            seen.update(generate_for(5, i).features)
        for feature in ("package", "generics", "mid", "config_spec",
                        "config_unit", "resolved_bus", "feedback",
                        "two_arch", "handshake"):
            assert feature in seen, feature

    def test_invalid_injection_is_rare_but_present(self):
        invalid = sum(
            any(f.startswith("invalid") for f in
                generate_for(9, i).features)
            for i in range(200))
        assert 1 <= invalid <= 40

    def test_tape_is_fully_recorded(self):
        tape = DecisionTape(21)
        design = generate_design(tape, seed=21, index=0)
        assert design.choices == tape.choices
        assert len(design.choices) == tape.draws
