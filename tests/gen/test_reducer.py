"""Tape-level shrinking: minimality, fixpoints, budgets, end-to-end."""

import pytest

from repro.gen import check_design, replay
from repro.gen.reducer import shrink


class TestListPredicates:
    def test_shrinks_to_single_interesting_value(self):
        choices = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]

        def has_big(choices):
            return any(c >= 9 for c in choices)

        result = shrink(choices, has_big)
        assert result.choices == [9]
        assert result.improved

    def test_decreases_magnitudes(self):
        def total_at_least_5(choices):
            return sum(choices) >= 5

        result = shrink([100, 200, 300], total_at_least_5)
        assert sum(result.choices) == 5
        assert len(result.choices) == 1

    def test_preserves_positional_failure(self):
        # Failure depends on position 2 being nonzero.
        def third_nonzero(choices):
            return len(choices) > 2 and choices[2] != 0

        result = shrink([7, 8, 9, 10, 11], third_nonzero)
        assert len(result.choices) == 3
        assert result.choices[2] != 0
        assert result.choices[0] == result.choices[1] == 0

    def test_rejects_flaky_initial(self):
        with pytest.raises(ValueError):
            shrink([1, 2, 3], lambda c: False)

    def test_eval_budget_is_respected(self):
        calls = []
        original = list(range(1, 101))

        def only_original(choices):
            calls.append(1)
            return choices == original

        result = shrink(original, only_original, max_evals=30)
        assert len(calls) <= 30
        assert result.exhausted
        assert result.choices == original

    def test_already_minimal_is_stable(self):
        result = shrink([1], lambda c: bool(c) and c[0] == 1)
        assert result.choices == [1]
        assert not result.improved

    def test_predicate_results_are_memoized(self):
        seen = {}

        def predicate(choices):
            key = tuple(choices)
            assert key not in seen, "predicate re-evaluated"
            seen[key] = True
            return sum(choices) >= 3

        shrink([5, 5], predicate)


class TestEndToEnd:
    """The ISSUE contract: a shrunk design still reproduces the
    original failure predicate."""

    def test_shrunk_design_reproduces_failure(self):
        # Treat "design instantiates a mid wrapper" as the failure
        # of interest; the minimized tape must keep reproducing it
        # through full replay.
        from repro.gen import generate_for

        target = None
        for i in range(60):
            design = generate_for(17, i)
            if "mid" in design.features:
                target = design
                break
        assert target is not None

        def still_has_mid(choices):
            return "mid" in replay(choices, seed=17,
                                   index=target.index).features

        result = shrink(target.choices, still_has_mid,
                        max_evals=300)
        minimized = replay(result.choices, seed=17,
                           index=target.index)
        assert "mid" in minimized.features
        assert len(result.choices) <= len(target.choices)
        assert minimized.lines <= target.lines

    def test_shrunk_design_keeps_oracle_outcome(self):
        # sim_error via an unresolved multi-driver: force the
        # generated feedback design into a colliding second driver
        # by replaying with an appended stanza is not possible —
        # instead pin the outcome-preservation contract on a
        # rejection (invalid injection) design.
        from repro.gen import generate_for

        target = None
        for i in range(300):
            design = generate_for(13, i)
            if any(f.startswith("invalid")
                   for f in design.features):
                outcome = check_design(design).outcome
                if outcome == "rejected":
                    target = design
                    break
        assert target is not None

        def still_rejected(choices):
            replayed = replay(choices, seed=13, index=target.index)
            return check_design(replayed).outcome == "rejected"

        result = shrink(target.choices, still_rejected,
                        max_evals=120)
        minimized = replay(result.choices, seed=13,
                           index=target.index)
        assert check_design(minimized).outcome == "rejected"
        assert minimized.lines <= target.lines
