"""The differential oracle: outcome classification end to end."""

from repro.diag import Diagnostic
from repro.gen import check_source, generate_for, check_design
from repro.gen.oracle import _compare, _simulate, NS
from repro.sim.kernel import Kernel, ScanKernel


GOOD = """
entity t is end t;
architecture a of t is
  signal clk : bit := '0';
  signal n : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  count : process (clk)
  begin
    if clk'event and clk = '1' then
      n <= (n + 1) mod 16;
    end if;
  end process;
end a;
"""

SYNTAX_ERROR = """
entity broken is
  port ( q : out integer )
end broken;
"""

SEMANTIC_ERROR = """
entity t is end t;
architecture a of t is
  signal x : integer := missing_name;
begin
end a;
"""

GENERATE_STMT = """
entity t is end t;
architecture a of t is
  signal x : integer := 0;
begin
  g0 : for i in 0 to 3 generate
    x <= 1;
  end generate;
end a;
"""

FAILING_ASSERT = """
entity t is end t;
architecture a of t is
  signal x : integer := 0;
begin
  stim : process
  begin
    wait for 10 ns;
    x <= 1;
    wait;
  end process;
  watch : assert x = 0
    report "x moved" severity failure;
end a;
"""

DELTA_STORM = """
entity t is end t;
architecture a of t is
  signal a1 : bit := '0';
begin
  p : a1 <= not a1;
end a;
"""


class TestOutcomes:
    def test_good_design_is_ok(self):
        result = check_source(GOOD, "t", until_ns=200)
        assert result.outcome == "ok"
        assert not result.failed

    def test_syntax_error_is_structured_rejection(self):
        result = check_source(SYNTAX_ERROR, "broken")
        assert result.outcome == "rejected"
        assert result.diagnostics
        assert all(isinstance(d, Diagnostic)
                   for d in result.diagnostics)

    def test_semantic_error_is_structured_rejection(self):
        result = check_source(SEMANTIC_ERROR, "t")
        assert result.outcome == "rejected"
        assert result.diagnostics

    def test_generate_statement_rejects_not_crashes(self):
        result = check_source(GENERATE_STMT, "t")
        assert result.outcome == "rejected"
        assert result.diagnostics

    def test_failure_severity_assert_is_sim_error(self):
        result = check_source(FAILING_ASSERT, "t", until_ns=100)
        assert result.outcome == "sim_error"
        assert "AssertionFailure" in result.detail

    def test_unbounded_delta_cycle_is_symmetric_sim_error(self):
        result = check_source(DELTA_STORM, "t", until_ns=50)
        assert result.outcome == "sim_error"
        assert "SimulationError" in result.detail


class TestSides:
    def test_sides_agree_on_good_design(self):
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        library = LibraryManager(root=None)
        Compiler(library=library, strict=False).compile(GOOD)
        cal = _simulate(Kernel, library, "t", 100 * NS)
        scan = _simulate(ScanKernel, library, "t", 100 * NS)
        assert cal["error"] is None
        assert cal["cycles"] > 0
        assert cal["vcd"].startswith("$date")
        assert _compare(cal, scan) is None

    def test_compare_names_first_differing_key(self):
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        library = LibraryManager(root=None)
        Compiler(library=library, strict=False).compile(GOOD)
        cal = _simulate(Kernel, library, "t", 100 * NS)
        scan = dict(_simulate(ScanKernel, library, "t", 100 * NS))
        scan["cycles"] += 1
        mismatch = _compare(cal, scan)
        assert mismatch is not None and mismatch.startswith("cycles")

    def test_metric_families_compared(self):
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        library = LibraryManager(root=None)
        Compiler(library=library, strict=False).compile(GOOD)
        cal = _simulate(Kernel, library, "t", 100 * NS)
        assert "sim_cycles_total" in cal["metrics"]
        assert "sim_signal_events_total" in cal["metrics"]


class TestGeneratedSweep:
    """A small inline conformance sweep — the harness's own smoke."""

    def test_first_designs_never_fail(self):
        for i in range(8):
            design = generate_for(1, i)
            result = check_design(design)
            assert not result.failed, (i, result.detail)

    def test_invalid_injections_reject_with_diagnostics(self):
        seen = 0
        for i in range(120):
            design = generate_for(13, i)
            if not any(f.startswith("invalid")
                       for f in design.features):
                continue
            seen += 1
            result = check_design(design)
            assert result.outcome in ("rejected", "sim_error"), \
                (i, result.outcome, result.detail)
            if result.outcome == "rejected":
                assert result.diagnostics
            if seen >= 3:
                break
        assert seen, "no invalid injections in 120 designs"
