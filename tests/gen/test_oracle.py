"""The differential oracle: outcome classification end to end."""

from repro.diag import Diagnostic
from repro.gen import check_source, generate_for, check_design
from repro.gen.oracle import _compare, _simulate, NS
from repro.sim.kernel import Kernel, ScanKernel


GOOD = """
entity t is end t;
architecture a of t is
  signal clk : bit := '0';
  signal n : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  count : process (clk)
  begin
    if clk'event and clk = '1' then
      n <= (n + 1) mod 16;
    end if;
  end process;
end a;
"""

SYNTAX_ERROR = """
entity broken is
  port ( q : out integer )
end broken;
"""

SEMANTIC_ERROR = """
entity t is end t;
architecture a of t is
  signal x : integer := missing_name;
begin
end a;
"""

GENERATE_STMT = """
entity t is end t;
architecture a of t is
  signal x : integer := 0;
begin
  g0 : for i in 0 to 3 generate
    x <= 1;
  end generate;
end a;
"""

FAILING_ASSERT = """
entity t is end t;
architecture a of t is
  signal x : integer := 0;
begin
  stim : process
  begin
    wait for 10 ns;
    x <= 1;
    wait;
  end process;
  watch : assert x = 0
    report "x moved" severity failure;
end a;
"""

DELTA_STORM = """
entity t is end t;
architecture a of t is
  signal a1 : bit := '0';
begin
  p : a1 <= not a1;
end a;
"""


class TestOutcomes:
    def test_good_design_is_ok(self):
        result = check_source(GOOD, "t", until_ns=200)
        assert result.outcome == "ok"
        assert not result.failed

    def test_syntax_error_is_structured_rejection(self):
        result = check_source(SYNTAX_ERROR, "broken")
        assert result.outcome == "rejected"
        assert result.diagnostics
        assert all(isinstance(d, Diagnostic)
                   for d in result.diagnostics)

    def test_semantic_error_is_structured_rejection(self):
        result = check_source(SEMANTIC_ERROR, "t")
        assert result.outcome == "rejected"
        assert result.diagnostics

    def test_generate_statement_rejects_not_crashes(self):
        result = check_source(GENERATE_STMT, "t")
        assert result.outcome == "rejected"
        assert result.diagnostics

    def test_failure_severity_assert_is_sim_error(self):
        result = check_source(FAILING_ASSERT, "t", until_ns=100)
        assert result.outcome == "sim_error"
        assert "AssertionFailure" in result.detail

    def test_unbounded_delta_cycle_is_symmetric_sim_error(self):
        result = check_source(DELTA_STORM, "t", until_ns=50)
        assert result.outcome == "sim_error"
        assert "SimulationError" in result.detail


class TestSides:
    def test_sides_agree_on_good_design(self):
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        library = LibraryManager(root=None)
        Compiler(library=library, strict=False).compile(GOOD)
        cal = _simulate(Kernel, library, "t", 100 * NS)
        scan = _simulate(ScanKernel, library, "t", 100 * NS)
        assert cal["error"] is None
        assert cal["cycles"] > 0
        assert cal["vcd"].startswith("$date")
        assert _compare(cal, scan) is None

    def test_compare_names_first_differing_key(self):
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        library = LibraryManager(root=None)
        Compiler(library=library, strict=False).compile(GOOD)
        cal = _simulate(Kernel, library, "t", 100 * NS)
        scan = dict(_simulate(ScanKernel, library, "t", 100 * NS))
        scan["cycles"] += 1
        mismatch = _compare(cal, scan)
        assert mismatch is not None and mismatch.startswith("cycles")

    def test_metric_families_compared(self):
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        library = LibraryManager(root=None)
        Compiler(library=library, strict=False).compile(GOOD)
        cal = _simulate(Kernel, library, "t", 100 * NS)
        assert "sim_cycles_total" in cal["metrics"]
        assert "sim_signal_events_total" in cal["metrics"]


class TestGeneratedSweep:
    """A small inline conformance sweep — the harness's own smoke."""

    def test_first_designs_never_fail(self):
        for i in range(8):
            design = generate_for(1, i)
            result = check_design(design)
            assert not result.failed, (i, result.detail)

    def test_invalid_injections_reject_with_diagnostics(self):
        seen = 0
        for i in range(120):
            design = generate_for(13, i)
            if not any(f.startswith("invalid")
                       for f in design.features):
                continue
            seen += 1
            result = check_design(design)
            assert result.outcome in ("rejected", "sim_error"), \
                (i, result.outcome, result.detail)
            if result.outcome == "rejected":
                assert result.diagnostics
            if seen >= 3:
                break
        assert seen, "no invalid injections in 120 designs"


class TestAnalyzeLeg:
    """The optional static-analysis leg of the oracle: the analyzer
    must never crash on a generated design and must never claim a
    combinational loop on a design both kernels ran to quiescence."""

    def test_good_design_still_ok_with_analyze(self):
        result = check_source(GOOD, "t", until_ns=200, analyze=True)
        assert result.outcome == "ok"

    def test_sim_error_wins_over_static_findings(self):
        # The delta storm IS a comb loop statically, but the sweep
        # outcome stays the kernel truth: both kernels hit the
        # iteration limit, so the design is sim_error, not a
        # static/dynamic divergence.
        result = check_source(DELTA_STORM, "t", until_ns=50,
                              analyze=True)
        assert result.outcome == "sim_error"

    def test_loop_on_quiescent_design_is_divergence(self):
        # A comb loop whose processes never actually fire (no
        # stimulus reaches it) quiesces dynamically; if the static
        # analyzer still reports RPE001 the legs disagree and the
        # oracle must say so.  Force the situation by faking the
        # analyzer result.
        from repro.gen import oracle as oracle_mod

        class FakeDiag:
            code = "RPE001"
            message = "combinational loop through fake signals"

        real = oracle_mod._analyze
        oracle_mod._analyze = lambda library, top: [FakeDiag()]
        try:
            result = check_source(GOOD, "t", until_ns=100,
                                  analyze=True)
        finally:
            oracle_mod._analyze = real
        assert result.outcome == "divergence"
        assert "static/dynamic divergence" in result.detail

    def test_analyzer_crash_is_a_crash_outcome(self):
        # _analyze wraps the flatten+rules stage: an exception there
        # must surface as a crash outcome, not kill the sweep worker.
        import repro.analysis as analysis_mod

        def boom(records, top_path=None):
            raise RuntimeError("analyzer exploded")

        real = analysis_mod.build_netlist
        analysis_mod.build_netlist = boom
        try:
            result = check_source(GOOD, "t", until_ns=100,
                                  analyze=True)
        finally:
            analysis_mod.build_netlist = real
        assert result.outcome == "crash"
        assert "analyze raised" in result.detail
        assert "analyzer exploded" in result.detail

    def test_first_generated_designs_survive_analyze(self):
        for i in range(10):
            design = generate_for(1, i)
            result = check_design(design, analyze=True)
            assert not result.failed, (i, result.outcome,
                                       result.detail)
