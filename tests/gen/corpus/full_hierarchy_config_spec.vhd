-- repro-fuzz: expect=ok top=fz_top until_ns=300
-- repro-fuzz: seed=7 index=119
-- repro-fuzz: note=pinned from the first seed-7 sweep
package fz_pkg is
  constant k0 : integer := 9;
  function step (x : integer) return integer;
end fz_pkg;
package body fz_pkg is
  function step (x : integer) return integer is
  begin
    return (x + 3) mod 1000;
  end step;
end fz_pkg;

use work.fz_pkg.all;
entity fz_leaf0 is
  generic ( g : integer := 7 );
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf0;
architecture fz_a0 of fz_leaf0 is
begin
  tick : process (clk)
  begin
    if clk'event and clk = '1' then
      dout <= step(((din + g) * 5 + 3) mod 1000);
    end if;
  end process;
end fz_a0;
architecture fz_a1 of fz_leaf0 is
begin
  dout <= step(((din + g) * 6 + 7) mod 1000) after 5 ns;
end fz_a1;

entity fz_mid is
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_mid;
architecture wrap of fz_mid is
  component fz_leaf0
    generic ( g : integer := 7 );
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  for w0 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
begin
  w0 : fz_leaf0 port map ( clk => clk, din => din, dout => dout );
end wrap;

use work.fz_pkg.all;
entity fz_top is
end fz_top;
architecture bench of fz_top is
  component fz_leaf0
    generic ( g : integer := 7 );
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  component fz_mid
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  for u0 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
  signal clk : bit := '0';
  signal d0 : integer := 0;
  signal d1 : integer := 0;
  signal d2 : integer := 0;
  signal hits : integer := 0;
  signal kmirror : integer := k0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  u0 : fz_leaf0 port map ( clk => clk, din => d0, dout => d1 );
  u1 : fz_mid port map ( clk => clk, din => d1, dout => d2 );
  feedback : d0 <= transport (d2 + 1) mod 1000 after 8 ns;
  mon : process
  begin
    wait until d2 /= 0;
    hits <= hits + 1;
    wait;
  end process;
  watch : assert d2 < 1000
    report "stage out of range" severity note;
  kmix : kmirror <= (d2 + k0) mod 1000;
end bench;
