-- repro-fuzz: expect=ok top=fz_top until_ns=100
-- repro-fuzz: note=three wired-or drivers firing at the same instants; resolution order and event counting must be kernel-independent
entity fz_top is
end fz_top;
architecture bench of fz_top is
  function wor (bits : bit_vector) return bit is
  begin
    for i in bits'range loop
      if bits(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wor;
  subtype rbit is wor bit;
  signal b : rbit := '0';
begin
  d0 : b <= '1' after 10 ns, '0' after 20 ns;
  d1 : b <= '0' after 10 ns, '1' after 20 ns;
  d2 : b <= '1' after 20 ns;
end bench;
