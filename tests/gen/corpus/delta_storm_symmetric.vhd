-- repro-fuzz: expect=sim_error top=fz_top until_ns=100
-- repro-fuzz: note=zero-delay self-inversion exhausts max_deltas; both kernels must raise the identical SimulationError at the identical point
entity fz_top is
end fz_top;
architecture bench of fz_top is
  signal a1 : bit := '0';
begin
  p : a1 <= not a1;
end bench;
