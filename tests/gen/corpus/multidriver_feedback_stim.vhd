-- repro-fuzz: expect=sim_error top=fz_top until_ns=300
-- repro-fuzz: seed=7 index=4
-- repro-fuzz: note=first seed-7 sweep: stimulus and feedback both drove d0 (generator bug, fixed); the unresolved multi-driver must stay a symmetric RuntimeError_ on both kernels
entity fz_top is
end fz_top;
architecture bench of fz_top is
  signal d0 : integer := 0;
begin
  stim : process
  begin
    wait for 10 ns;
    d0 <= 1;
    wait;
  end process;
  feedback : d0 <= (d0 + 1) mod 1000 after 5 ns;
end bench;
