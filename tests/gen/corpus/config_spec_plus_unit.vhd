-- repro-fuzz: expect=ok top=fz_cfg until_ns=500
-- repro-fuzz: seed=7 index=65
-- repro-fuzz: note=pinned from the first seed-7 sweep
entity fz_leaf0 is
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf0;
architecture fz_a0 of fz_leaf0 is
begin
  tick : process (clk)
  begin
    if clk'event and clk = '1' then
      dout <= (din * 1 + 8) mod 1000;
    end if;
  end process;
end fz_a0;
architecture fz_a1 of fz_leaf0 is
begin
  tick : process (clk)
  begin
    if clk'event and clk = '1' then
      dout <= (din * 4 + 4) mod 1000;
    end if;
  end process;
end fz_a1;

entity fz_top is
end fz_top;
architecture bench of fz_top is
  component fz_leaf0
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  for u1 : fz_leaf0 use entity work.fz_leaf0(fz_a1);
  function wired_or (bits : bit_vector) return bit is
  begin
    for i in bits'range loop
      if bits(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wired_or;
  subtype rbit is wired_or bit;
  signal clk : bit := '0';
  signal d0 : integer := 0;
  signal d1 : integer := 0;
  signal d2 : integer := 0;
  signal bus0 : rbit := '0';
  signal hits : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  u0 : fz_leaf0 port map ( clk => clk, din => d0, dout => d1 );
  u1 : fz_leaf0 port map ( clk => clk, din => d1, dout => d2 );
  feedback : d0 <= transport (d2 + 1) mod 1000 after 5 ns;
  drv0 : bus0 <= '0' after 15 ns;
  drv1 : bus0 <= '0' after 31 ns;
  mon : process
  begin
    wait until d2 /= 0;
    hits <= hits + 1;
    wait;
  end process;
end bench;

configuration fz_cfg of fz_top is
  for bench
    for u1 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
    end for;
  end for;
end fz_cfg;
