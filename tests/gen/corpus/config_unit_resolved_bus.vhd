-- repro-fuzz: expect=ok top=fz_cfg until_ns=1000
-- repro-fuzz: seed=7 index=118
-- repro-fuzz: note=pinned from the first seed-7 sweep
entity fz_leaf0 is
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf0;
architecture fz_a0 of fz_leaf0 is
begin
  tick : process (clk)
  begin
    if clk'event and clk = '1' then
      dout <= (din * 4 + 3) mod 1000;
    end if;
  end process;
end fz_a0;
architecture fz_a1 of fz_leaf0 is
begin
  tick : process (clk)
  begin
    if clk'event and clk = '1' then
      dout <= (din * 5 + 8) mod 1000;
    end if;
  end process;
end fz_a1;

entity fz_mid is
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_mid;
architecture wrap of fz_mid is
  component fz_leaf0
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
begin
  w0 : fz_leaf0 port map ( clk => clk, din => din, dout => dout );
end wrap;

entity fz_top is
end fz_top;
architecture bench of fz_top is
  component fz_leaf0
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  component fz_mid
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  function wired_or (bits : bit_vector) return bit is
  begin
    for i in bits'range loop
      if bits(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wired_or;
  subtype rbit is wired_or bit;
  signal clk : bit := '0';
  signal d0 : integer := 0;
  signal d1 : integer := 0;
  signal d2 : integer := 0;
  signal d3 : integer := 0;
  signal bus0 : rbit := '0';
  signal hits : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  u0 : fz_leaf0 port map ( clk => clk, din => d0, dout => d1 );
  u1 : fz_leaf0 port map ( clk => clk, din => d1, dout => d2 );
  u2 : fz_mid port map ( clk => clk, din => d2, dout => d3 );
  feedback : d0 <= transport (d3 + 1) mod 1000 after 5 ns;
  drv0 : bus0 <= '0' after 9 ns;
  drv1 : bus0 <= '0' after 24 ns, '0' after 34 ns;
  mon : process
  begin
    wait until d3 /= 0;
    hits <= hits + 1;
    wait;
  end process;
  watch : assert d3 < 1000
    report "stage out of range" severity note;
end bench;

configuration fz_cfg of fz_top is
  for bench
    for u0 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
    end for;
  end for;
end fz_cfg;
