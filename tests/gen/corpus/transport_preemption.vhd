-- repro-fuzz: expect=ok top=fz_top until_ns=100
-- repro-fuzz: note=transport re-projection deletes queued transactions at and after the new time; calendar lazy deletion and the scan reference must agree on every counter
entity fz_top is
end fz_top;
architecture bench of fz_top is
  signal s : integer := 0;
begin
  stim : process
  begin
    s <= transport 1 after 10 ns, 2 after 20 ns, 3 after 30 ns;
    wait for 5 ns;
    s <= transport 9 after 10 ns;
    wait;
  end process;
end bench;
