-- repro-fuzz: expect=rejected top=fz_cfg until_ns=300
-- repro-fuzz: seed=7 index=49
-- repro-fuzz: note=generate statements must reject with structured diagnostics
entity fz_leaf0 is
  generic ( g : integer := 2 );
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf0;
architecture fz_a0 of fz_leaf0 is
begin
  comb : process (din)
  begin
    dout <= ((din + g) * 8 + 6) mod 1000 after 3 ns;
  end process;
end fz_a0;
architecture fz_a1 of fz_leaf0 is
begin
  comb : process (din)
  begin
    dout <= ((din + g) * 5 + 5) mod 1000 after 7 ns;
  end process;
end fz_a1;

entity fz_leaf1 is
  generic ( g : integer := 7 );
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf1;
architecture fz_a0 of fz_leaf1 is
begin
  tick : process (clk)
  begin
    if clk'event and clk = '1' then
      dout <= ((din + g) * 2 + 2) mod 1000;
    end if;
  end process;
end fz_a0;

entity fz_top is
end fz_top;
architecture bench of fz_top is
  component fz_leaf0
    generic ( g : integer := 2 );
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  for u0 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
  function wired_or (bits : bit_vector) return bit is
  begin
    for i in bits'range loop
      if bits(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wired_or;
  subtype rbit is wired_or bit;
  signal clk : bit := '0';
  signal d0 : integer := 0;
  signal d1 : integer := 0;
  signal bus0 : rbit := '0';
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  u0 : fz_leaf0 port map ( clk => clk, din => d0, dout => d1 );
  stim : process
    variable v : integer := 0;
  begin
    for i in 1 to 8 loop
      v := (v + 4) mod 1000;
      d0 <= v;
      wait for 7 ns;
    end loop;
    wait;
  end process;
  drv0 : bus0 <= '1' after 3 ns;
  drv1 : bus0 <= '0' after 8 ns, '1' after 12 ns;
  gen0 : for i in 0 to 3 generate
    d1 <= d0;
  end generate;
end bench;

configuration fz_cfg of fz_top is
  for bench
    for u0 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
    end for;
  end for;
end fz_cfg;
