-- repro-fuzz: expect=ok top=fz_cfg until_ns=1000
-- repro-fuzz: seed=7 index=18
-- repro-fuzz: note=pinned from the first seed-7 sweep
package fz_pkg is
  constant k0 : integer := 5;
  function step (x : integer) return integer;
end fz_pkg;
package body fz_pkg is
  function step (x : integer) return integer is
  begin
    return (x + 3) mod 1000;
  end step;
end fz_pkg;

entity fz_leaf0 is
  generic ( g : integer := 7 );
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf0;
architecture fz_a0 of fz_leaf0 is
begin
  dout <= ((din + g) * 5 + 0) mod 1000 after 6 ns;
end fz_a0;
architecture fz_a1 of fz_leaf0 is
begin
  comb : process (din)
  begin
    dout <= ((din + g) * 4 + 2) mod 1000 after 1 ns;
  end process;
end fz_a1;

use work.fz_pkg.all;
entity fz_leaf1 is
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_leaf1;
architecture fz_a0 of fz_leaf1 is
begin
  comb : process (din)
  begin
    dout <= step((din * 9 + 4) mod 1000) after 1 ns;
  end process;
end fz_a0;

entity fz_mid is
  port ( clk : in bit; din : in integer; dout : out integer );
end fz_mid;
architecture wrap of fz_mid is
  component fz_leaf1
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  for w0 : fz_leaf1 use entity work.fz_leaf1(fz_a0);
begin
  w0 : fz_leaf1 port map ( clk => clk, din => din, dout => dout );
end wrap;

use work.fz_pkg.all;
entity fz_top is
end fz_top;
architecture bench of fz_top is
  component fz_leaf0
    generic ( g : integer := 7 );
    port ( clk : in bit; din : in integer; dout : out integer );
  end component;
  for u0 : fz_leaf0 use entity work.fz_leaf0(fz_a1);
  signal clk : bit := '0';
  signal d0 : integer := 0;
  signal d1 : integer := 0;
  signal hits : integer := 0;
  signal kmirror : integer := k0;
begin
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  u0 : fz_leaf0 generic map ( g => 4 ) port map ( clk => clk, din => d0, dout => d1 );
  stim : process
  begin
    wait for 9 ns;
    d0 <= 936;
    wait for 6 ns;
    d0 <= 981;
    wait;
  end process;
  mon : process
  begin
    wait until d1 /= 0;
    hits <= hits + 1;
    wait;
  end process;
  kmix : kmirror <= (d1 + k0) mod 1000;
end bench;

configuration fz_cfg of fz_top is
  for bench
    for u0 : fz_leaf0 use entity work.fz_leaf0(fz_a0);
    end for;
  end for;
end fz_cfg;
