"""The decision tape: determinism, replay totality, shrink encoding."""

import pytest

from repro.gen.tape import DecisionTape, mix_seed, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(1) == splitmix64(1)
        assert splitmix64(1) != splitmix64(2)

    def test_outputs_are_64bit(self):
        state, out = splitmix64((1 << 64) - 1)
        assert 0 <= state < 1 << 64
        assert 0 <= out < 1 << 64


class TestMixSeed:
    def test_function_of_seed_and_index_only(self):
        assert mix_seed(7, 3) == mix_seed(7, 3)

    def test_indices_get_distinct_streams(self):
        streams = {mix_seed(7, i) for i in range(100)}
        assert len(streams) == 100

    def test_seeds_get_distinct_streams(self):
        assert mix_seed(1, 0) != mix_seed(2, 0)


class TestGenerateMode:
    def test_same_seed_same_draws(self):
        a = DecisionTape(42)
        b = DecisionTape(42)
        assert [a.draw(10) for _ in range(50)] == \
            [b.draw(10) for _ in range(50)]

    def test_different_seeds_differ(self):
        a = [DecisionTape(1).draw(1000) for _ in range(1)]
        b = [DecisionTape(2).draw(1000) for _ in range(1)]
        # One draw can collide; twenty shouldn't.
        a = DecisionTape(1)
        b = DecisionTape(2)
        assert [a.draw(1000) for _ in range(20)] != \
            [b.draw(1000) for _ in range(20)]

    def test_records_choices(self):
        tape = DecisionTape(7)
        drawn = [tape.draw(5) for _ in range(10)]
        assert tape.choices == drawn
        assert tape.draws == 10

    def test_seed_zero_is_valid(self):
        tape = DecisionTape(0)
        values = [tape.draw(100) for _ in range(10)]
        assert any(values), "seed 0 must still produce a live stream"

    def test_draw_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DecisionTape(1).draw(0)


class TestReplayMode:
    def test_replays_recorded_choices(self):
        tape = DecisionTape(9)
        drawn = [tape.draw(7) for _ in range(20)]
        replay = DecisionTape.replaying(tape.choices)
        assert [replay.draw(7) for _ in range(20)] == drawn

    def test_out_of_range_values_fold(self):
        replay = DecisionTape.replaying([13])
        assert replay.draw(5) == 13 % 5

    def test_exhausted_tape_returns_zero(self):
        replay = DecisionTape.replaying([3])
        assert replay.draw(5) == 3
        assert replay.draw(5) == 0
        assert replay.draw(9) == 0

    def test_any_integer_list_is_a_valid_tape(self):
        replay = DecisionTape.replaying([10**9, 0, 7, 123456])
        for n in (3, 5, 2, 7, 11):
            value = replay.draw(n)
            assert 0 <= value < n

    def test_replay_rerecords_folded_choices(self):
        replay = DecisionTape.replaying([13, 99])
        replay.draw(5)
        replay.draw(10)
        assert replay.choices == [13 % 5, 99 % 10]


class TestConveniences:
    def test_randint_inclusive(self):
        tape = DecisionTape(11)
        values = {tape.randint(3, 6) for _ in range(200)}
        assert values == {3, 4, 5, 6}

    def test_choice(self):
        tape = DecisionTape(11)
        seq = ("a", "b", "c")
        assert all(tape.choice(seq) in seq for _ in range(20))

    def test_weighted_zero_draw_hits_first_pair(self):
        replay = DecisionTape.replaying([0])
        assert replay.weighted((("simple", 1), ("complex", 9))) \
            == "simple"

    def test_weighted_respects_weights(self):
        tape = DecisionTape(5)
        picks = [tape.weighted((("a", 1), ("b", 99)))
                 for _ in range(100)]
        assert picks.count("b") > picks.count("a")

    def test_chance_zero_draw_is_false(self):
        replay = DecisionTape.replaying([0, 0, 0])
        assert replay.chance(1, 2) is False
        assert replay.chance(9, 10) is False

    def test_chance_numerator_zero_draws_nothing(self):
        tape = DecisionTape(1)
        assert tape.chance(0, 4) is False
        assert tape.draws == 0

    def test_chance_frequency(self):
        tape = DecisionTape(19)
        hits = sum(tape.chance(1, 4) for _ in range(1000))
        assert 150 < hits < 350
