"""The sweep engine: determinism across jobs, failure minimization,
metrics, and the report envelope."""

from repro.gen import runner as runner_mod
from repro.gen.runner import FuzzReport, fuzz_task, run_sweep
from repro.metrics import MetricsRegistry


def _strip_timing(report):
    return [{k: r[k] for k in ("index", "outcome", "lines",
                               "features", "choices")}
            for r in report.records]


class TestDeterminism:
    def test_jobs_1_and_4_are_byte_identical(self):
        serial = run_sweep(3, 10, jobs=1)
        forked = run_sweep(3, 10, jobs=4)
        assert _strip_timing(serial) == _strip_timing(forked)
        assert serial.counts == forked.counts

    def test_two_serial_runs_identical(self):
        a = run_sweep(5, 8, jobs=1)
        b = run_sweep(5, 8, jobs=1)
        assert _strip_timing(a) == _strip_timing(b)

    def test_records_are_in_index_order(self):
        report = run_sweep(1, 6, jobs=4)
        assert [r["index"] for r in report.records] == list(range(6))


class TestSweep:
    def test_clean_sweep_reports_ok(self):
        report = run_sweep(7, 8, jobs=1)
        assert report.ok
        assert sum(report.counts.values()) == 8
        assert report.elapsed > 0
        assert report.designs_per_second > 0

    def test_envelope_shape(self):
        report = run_sweep(7, 4, jobs=1)
        env = report.as_envelope()
        assert env["schema"] == "repro-metrics/1"
        assert env["kind"] == "fuzz-report"
        assert env["seed"] == 7
        assert env["budget"] == 4
        assert len(env["designs"]) == 4
        assert env["failures"] == []

    def test_metrics_families(self):
        registry = MetricsRegistry()
        run_sweep(7, 5, jobs=1, metrics=registry)
        snap = registry.snapshot()["metrics"]
        assert "fuzz_designs_total" in snap
        assert "fuzz_design_lines" in snap
        assert "fuzz_check_seconds" in snap
        total = sum(s["value"]
                    for s in snap["fuzz_designs_total"]["samples"])
        assert total == 5

    def test_fuzz_task_is_self_contained(self):
        record = fuzz_task(7, 2)
        assert record["index"] == 2
        assert record["outcome"] in ("ok", "rejected", "sim_error",
                                     "divergence", "crash")
        assert record["choices"]
        assert record["lines"] > 0


class TestFailurePath:
    def test_failing_designs_are_minimized(self, monkeypatch):
        # Declare every design with a mid wrapper "divergent": the
        # runner must shrink it and report both forms.
        real_check = runner_mod.check_design

        def fake_check(design, analyze=False, compiled=False):
            result = real_check(design)
            if "mid" in design.features:
                result.outcome = "divergence"
                result.detail = "synthetic: mid wrapper"
            return result

        monkeypatch.setattr(runner_mod, "check_design", fake_check)

        def fake_task(seed, index, analyze=False, compiled=False):
            from repro.gen import generate_for
            design = generate_for(seed, index)
            result = fake_check(design)
            return {
                "index": index, "outcome": result.outcome,
                "detail": result.detail,
                "features": list(design.features),
                "lines": design.lines,
                "choices": list(design.choices),
                "lint_findings": 0, "seconds": 0.0,
            }

        monkeypatch.setattr(runner_mod, "fuzz_task", fake_task)
        registry = MetricsRegistry()
        report = run_sweep(17, 12, jobs=1, metrics=registry,
                           max_shrink_evals=150)
        assert not report.ok
        assert report.counts.get("divergence", 0) >= 1
        failure = report.failures[0]
        assert failure["shrunk"]
        assert failure["min_lines"] <= failure["lines"]
        assert "mid" in runner_mod.replay(
            failure["min_choices"], seed=17,
            index=failure["index"]).features
        snap = registry.snapshot()["metrics"]
        assert snap["fuzz_shrink_evals"]["samples"][0]["count"] >= 1

    def test_no_shrink_reports_raw_failure(self, monkeypatch):
        def fake_task(seed, index, analyze=False, compiled=False):
            return {
                "index": index, "outcome": "crash",
                "detail": "synthetic crash", "features": [],
                "lines": 3, "choices": [1, 2, 3],
                "lint_findings": 0, "seconds": 0.0,
            }

        monkeypatch.setattr(runner_mod, "fuzz_task", fake_task)
        report = run_sweep(1, 2, jobs=1, shrink_failures=False)
        assert not report.ok
        assert all(not f["shrunk"] for f in report.failures)
        assert all("replay" in f for f in report.failures)

    def test_dead_worker_is_a_crash_outcome(self):
        record = runner_mod._task_crash((7, 4),
                                        RuntimeError("boom"))
        assert record["outcome"] == "crash"
        assert record["index"] == 4
        assert "boom" in record["detail"]

    def test_flaky_failure_reported_unshrunk(self, monkeypatch):
        # The sweep sees a failure, but replaying never reproduces
        # it: the runner must fall back to the unshrunk report.
        def fake_task(seed, index, analyze=False, compiled=False):
            return {
                "index": index, "outcome": "divergence",
                "detail": "flaky", "features": [],
                "lines": 3, "choices": [5, 5],
                "lint_findings": 0, "seconds": 0.0,
            }

        def never_fails(design):
            class R:
                outcome = "ok"
            return R()

        monkeypatch.setattr(runner_mod, "fuzz_task", fake_task)
        monkeypatch.setattr(runner_mod, "check_design", never_fails)
        report = run_sweep(1, 1, jobs=1)
        assert not report.ok
        failure = report.failures[0]
        assert not failure["shrunk"]
        assert "shrink_error" in failure


class TestReport:
    def test_empty_report(self):
        report = FuzzReport(1, 0, 1)
        assert report.ok
        assert report.designs_per_second == 0.0
