"""The corpus store and the committed regression corpus replay."""

import os

import pytest

from repro.gen import generate_for, check_design
from repro.gen.corpus import (
    CorpusEntry,
    iter_corpus,
    load_entry,
    parse_entry,
    render_entry,
    save,
)
from repro.gen.oracle import FAILURE_OUTCOMES

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestStore:
    def test_render_parse_round_trip(self):
        design = generate_for(7, 119)
        result = check_design(design)
        text = render_entry(design, result, note="round trip")
        entry = parse_entry(text, name="rt")
        assert entry.expect == result.outcome
        assert entry.top == design.top
        assert entry.until_ns == design.until_ns
        assert entry.source == design.source
        assert entry.meta["seed"] == "7"
        assert entry.meta["index"] == "119"
        assert entry.meta["note"] == "round trip"

    def test_save_and_load(self, tmp_path):
        design = generate_for(7, 0)
        result = check_design(design)
        path = save(str(tmp_path), design, result, name="one")
        entry = load_entry(path)
        assert entry.name == "one"
        assert entry.source == design.source
        again = entry.check()
        assert again.outcome == result.outcome

    def test_refuses_to_pin_failures(self):
        design = generate_for(7, 0)

        class Failed:
            outcome = "divergence"
        with pytest.raises(ValueError):
            render_entry(design, Failed())

    def test_iter_corpus_sorted(self, tmp_path):
        for name in ("b", "a", "c"):
            design = generate_for(7, 1)
            result = check_design(design)
            save(str(tmp_path), design, result, name=name)
        names = [e.name for e in iter_corpus(str(tmp_path))]
        assert names == ["a", "b", "c"]

    def test_iter_missing_dir_is_empty(self):
        assert iter_corpus("/nonexistent/gen/corpus") == []

    def test_defaults(self):
        entry = CorpusEntry("x", None, "entity fz_top is end;", {})
        assert entry.expect == "ok"
        assert entry.top == "fz_top"
        assert entry.until_ns == 1000


def _committed_entries():
    entries = iter_corpus(CORPUS_DIR)
    assert entries, "the committed corpus must not be empty"
    return entries


@pytest.mark.parametrize(
    "entry", _committed_entries(), ids=lambda e: e.name)
class TestCommittedCorpus:
    """Every committed entry replays to its pinned outcome."""

    def test_replays_to_pinned_outcome(self, entry):
        result = entry.check()
        assert result.outcome not in FAILURE_OUTCOMES, \
            (entry.name, result.outcome, result.detail)
        assert result.outcome == entry.expect, \
            (entry.name, result.outcome, result.detail)

    def test_rejections_carry_structured_diagnostics(self, entry):
        if entry.expect != "rejected":
            pytest.skip("only rejection entries")
        result = entry.check()
        assert result.diagnostics
