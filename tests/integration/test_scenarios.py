"""Larger realistic scenarios stressing many features at once."""

import pytest

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

NS = 10**6


def simulate(source, top, until_ns):
    compiler = Compiler(strict=False)
    result = compiler.compile(source)
    assert result.ok, result.messages
    sim = Elaborator(compiler.library).elaborate(top)
    sim.run(until_fs=until_ns * NS)
    return sim


class TestShiftRegisterSerializer:
    """Bit-vector slices, concatenation, clocked shifting."""

    SOURCE = """
        entity serializer is end serializer;
        architecture rtl of serializer is
          signal clk : bit := '0';
          signal sreg : bit_vector(7 downto 0) := "10110001";
          signal line_out : bit := '0';
          signal sent : integer := 0;
        begin
          clock : process
          begin
            clk <= not clk after 5 ns;
            wait on clk;
          end process;

          shift : process (clk)
          begin
            if clk'event and clk = '1' then
              if sent < 8 then
                line_out <= sreg(7);
                sreg <= sreg(6 downto 0) & '0';
                sent <= sent + 1;
              end if;
            end if;
          end process;
        end rtl;
    """

    def test_serializes_msb_first(self):
        sim = simulate(self.SOURCE, "serializer", 200)
        assert sim.value("sent") == 8
        assert sim.value("sreg").elems == [0] * 8

    def test_line_history(self):
        from repro.sim.tracing import Tracer

        compiler = Compiler(strict=False)
        compiler.compile(self.SOURCE)
        sim = Elaborator(compiler.library).elaborate("serializer")
        line = sim.signal("line_out")
        tracer = Tracer(sim.kernel, [line])
        sim.run(until_fs=200 * NS)
        # Changes of line_out trace the bit pattern 10110001 msb-first
        # (only *changes* are recorded).
        bits = "10110001"
        expected_changes = []
        prev = "0"
        for b in bits:
            if b != prev:
                expected_changes.append(int(b))
                prev = b
        got = [v for _, v in tracer.changes(line)][1:]
        assert got == expected_changes


class TestStateMachineWithRecords:
    """Records, enumeration FSM, procedures writing out-params."""

    SOURCE = """
        entity fsm is end fsm;
        architecture behave of fsm is
          type phase is (boot, run, halt);
          type status is record
            ticks : integer;
            last : phase;
          end record;
          signal clk : bit := '0';
          signal st : phase := boot;
          signal snapshot_ticks : integer := 0;
        begin
          clock : process
          begin
            clk <= not clk after 10 ns;
            wait on clk;
          end process;

          control : process (clk)
            variable info : status := (ticks => 0, last => boot);
            procedure note (s : in phase; t : in integer;
                            o : out status) is
            begin
              o := (ticks => t, last => s);
            end note;
          begin
            if clk'event and clk = '1' then
              info.ticks := info.ticks + 1;
              case st is
                when boot =>
                  if info.ticks >= 3 then
                    st <= run;
                  end if;
                when run =>
                  if info.ticks >= 6 then
                    st <= halt;
                    note(run, info.ticks, info);
                    snapshot_ticks <= info.ticks;
                  end if;
                when halt =>
                  null;
              end case;
            end if;
          end process;
        end behave;
    """

    def test_reaches_halt(self):
        sim = simulate(self.SOURCE, "fsm", 400)
        # phase: boot, run, halt as positions 0,1,2
        assert sim.value("st") == 2
        assert sim.value("snapshot_ticks") == 6


class TestMemoryModel:
    """Unconstrained array type from a package + function returning
    composite values."""

    SOURCE = """
        package mem_pkg is
          type word_array is array (natural range <>) of integer;
          function sum_all (m : word_array) return integer;
        end mem_pkg;

        package body mem_pkg is
          function sum_all (m : word_array) return integer is
            variable acc : integer := 0;
          begin
            for i in m'range loop
              acc := acc + m(i);
            end loop;
            return acc;
          end sum_all;
        end mem_pkg;

        use work.mem_pkg.all;

        entity memory is end memory;
        architecture behave of memory is
          signal checksum : integer := 0;
        begin
          process
            variable store : word_array(0 to 7)
                := (others => 0);
          begin
            for addr in 0 to 7 loop
              store(addr) := addr * addr;
            end loop;
            checksum <= sum_all(store);
            wait;
          end process;
        end behave;
    """

    def test_checksum(self):
        sim = simulate(self.SOURCE, "memory", 10)
        assert sim.value("checksum") == sum(i * i for i in range(8))


class TestHandshakeProtocol:
    """Two processes with req/ack handshake through wait-until."""

    SOURCE = """
        entity handshake is end handshake;
        architecture protocol of handshake is
          signal req : bit := '0';
          signal ack : bit := '0';
          signal data : integer := 0;
          signal received : integer := 0;
          signal count : integer := 0;
        begin
          producer : process
          begin
            for i in 1 to 5 loop
              data <= i * 10;
              req <= '1';
              wait until ack = '1';
              req <= '0';
              wait until ack = '0';
            end loop;
            wait;
          end process;

          consumer : process
          begin
            wait until req = '1';
            received <= data;
            count <= count + 1;
            wait for 1 ns;
            ack <= '1';
            wait until req = '0';
            ack <= '0';
          end process;
        end protocol;
    """

    def test_five_transfers(self):
        sim = simulate(self.SOURCE, "handshake", 1000)
        assert sim.value("count") == 5
        assert sim.value("received") == 50
