"""Integration tests: the whole paper pipeline, end to end.

Each test exercises source → principal AG (+ cascaded expression AG) →
VIF in a library → generated model → elaboration → kernel — with
cross-checks between stages (VIF round-trips, name-server contents,
traced waveforms).
"""

import json

import pytest

from repro.sim.tracing import Tracer
from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator
from repro.vhdl.library import LibraryManager

NS = 10**6

DESIGN = """
    package alu_pkg is
      type opcode is (op_add, op_sub, op_and);
      constant word_bits : integer := 8;
    end alu_pkg;

    use work.alu_pkg.all;

    entity alu is
      port ( op : in opcode; a : in integer; b : in integer;
             y : out integer );
    end alu;

    architecture behave of alu is
    begin
      process (op, a, b)
      begin
        case op is
          when op_add => y <= a + b;
          when op_sub => y <= a - b;
          when op_and => y <= 0;
        end case;
      end process;
    end behave;

    use work.alu_pkg.all;

    entity harness is end harness;

    architecture tb of harness is
      component alu
        port ( op : in opcode; a : in integer; b : in integer;
               y : out integer );
      end component;
      signal op : opcode := op_add;
      signal a : integer := 20;
      signal b : integer := 22;
      signal y : integer := 0;
    begin
      dut : alu port map ( op => op, a => a, b => b, y => y );
      drive : process
      begin
        wait for 10 ns;
        op <= op_sub;
        wait for 10 ns;
        a <= 100;
        wait;
      end process;
    end tb;
"""


@pytest.fixture(scope="module")
def compiled():
    compiler = Compiler(strict=False)
    result = compiler.compile(DESIGN)
    assert result.ok, result.messages
    return compiler, result


class TestPipeline:
    def test_all_units_registered(self, compiled):
        compiler, result = compiled
        keys = [k for lib, k in compiler.library.compile_order
                if lib == "work"]
        assert keys == ["alu_pkg", "alu", "behave(alu)", "harness",
                        "tb(harness)"]

    def test_simulation_results(self, compiled):
        compiler, _ = compiled
        sim = Elaborator(compiler.library).elaborate("harness")
        sim.run(until_fs=5 * NS)
        assert sim.value("y") == 42      # op_add: 20 + 22
        sim.run(until_fs=15 * NS)
        assert sim.value("y") == -2      # op_sub: 20 - 22
        sim.run(until_fs=25 * NS)
        assert sim.value("y") == 78      # op_sub: 100 - 22

    def test_trace_records_the_story(self, compiled):
        compiler, _ = compiled
        sim = Elaborator(compiler.library).elaborate("harness")
        y = sim.signal("y")
        tracer = Tracer(sim.kernel, [y])
        sim.run(until_fs=30 * NS)
        values = [v for _, v in tracer.changes(y)]
        assert values == [0, 42, -2, 78]

    def test_vif_payload_roundtrips_through_json(self, compiled):
        """The stored form survives a byte-level round trip and a
        fresh session can elaborate from it alone."""
        compiler, _ = compiled
        stored = {
            (lib, key): json.loads(json.dumps(
                compiler.library.payload_of(lib, key)))
            for lib, key in compiler.library.compile_order
            if lib == "work"
        }
        fresh = LibraryManager()
        for (lib, key), payload in stored.items():
            fresh._payloads[(lib, key)] = payload
            fresh._libraries.add(lib)
            node = fresh.reader.read_unit(lib, key)["unit"]
            fresh.install_unit(lib, key, node)
        sim = Elaborator(fresh).elaborate("harness")
        sim.run(until_fs=5 * NS)
        assert sim.value("y") == 42

    def test_hierarchical_names(self, compiled):
        compiler, _ = compiled
        sim = Elaborator(compiler.library).elaborate("harness")
        assert sim.names.lookup(":harness:dut") is not None
        assert sim.names.by_suffix("y") == [":harness:y"]
        tree = sim.names.tree()
        assert "dut [instance]" in tree

    def test_expression_ag_invoked_per_maximal_expression(self,
                                                          compiled):
        """§4.1: the second evaluator 'operates once for each maximal
        expression in the source program'."""
        _, result = compiled
        # The design has dozens of maximal expressions (types, bounds,
        # initializers, conditions, waveforms, choices, targets).
        assert result.expr_evals >= 25

    def test_phase_timings_recorded(self, compiled):
        _, result = compiled
        assert set(result.timings) == {
            "scan", "parse", "attribute_evaluation", "model_compile",
            "vif"}
        assert all(t >= 0 for t in result.timings.values())


class TestRecompilationIsolation:
    def test_recompile_does_not_mutate_old_nodes(self):
        """VIF immutability: recompiling a unit builds fresh nodes;
        units compiled against the old one keep their pointers."""
        compiler = Compiler(strict=False)
        compiler.compile("""
            package p is
              constant k : integer := 1;
            end p;
        """)
        old_pkg = compiler.library.find_unit("work", "p")
        compiler.compile("""
            use work.p.all;
            entity e is end e;
            architecture a of e is
              signal s : integer := k;
            begin
            end a;
        """)
        compiler.compile("""
            package p is
              constant k : integer := 99;
            end p;
        """)
        new_pkg = compiler.library.find_unit("work", "p")
        assert new_pkg is not old_pkg
        assert old_pkg.decls[0].value == 1
        assert new_pkg.decls[0].value == 99


class TestErrorRecovery:
    def test_errors_in_one_unit_do_not_corrupt_library(self):
        compiler = Compiler(strict=False)
        ok = compiler.compile("entity good is end good;")
        assert ok.ok
        bad = compiler.compile("""
            architecture a of good is
              signal s : mystery;
            begin
            end a;
        """)
        assert not bad.ok
        # The good entity remains usable.
        again = compiler.compile("""
            architecture b of good is
              signal s : integer := 1;
            begin
            end b;
        """)
        assert again.ok, again.messages

    def test_many_errors_all_collected(self):
        compiler = Compiler(strict=False)
        result = compiler.compile("""
            entity e is end e;
            architecture a of e is
              signal s1 : ghost1;
              signal s2 : ghost2;
              signal s3 : integer := ghost3;
            begin
            end a;
        """)
        text = "\n".join(result.messages)
        assert "ghost1" in text and "ghost2" in text \
            and "ghost3" in text
