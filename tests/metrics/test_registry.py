"""repro.metrics.registry: families, children, snapshot envelope."""

import pytest

from repro.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    SCHEMA,
    MetricsRegistry,
    envelope,
    log125_buckets,
)


class TestEnvelope:
    def test_schema_and_kind(self):
        data = envelope("metrics-snapshot", extra=1)
        assert data["schema"] == SCHEMA == "repro-metrics/1"
        assert data["kind"] == "metrics-snapshot"
        assert data["extra"] == 1
        assert "generated_at" in data

    def test_buckets_are_1_2_5(self):
        assert log125_buckets(1, 100) == (1, 2, 5, 10, 20, 50, 100)
        assert log125_buckets(10, 100) == (10, 20, 50, 100)


class TestCounter:
    def test_inc_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set_total(42)  # harvest-style adoption
        assert c.value == 42

    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total")
        fam.labels(outcome="hit").inc(3)
        fam.labels(outcome="miss").inc()
        assert fam.labels(outcome="hit").value == 3
        assert fam.labels(outcome="miss").value == 1
        # label order does not matter
        fam2 = reg.counter("multi")
        fam2.labels(a="1", b="2").inc()
        assert fam2.labels(b="2", a="1").value == 1

    def test_unlabeled_family_is_its_own_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("plain")
        assert fam.labels() is fam


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 2, 5))
        for v in (0, 1, 2, 3, 100):
            h.observe(v)
        sample = h._sample_dict()
        assert sample["count"] == 5
        assert sample["sum"] == 106
        assert sample["min"] == 0 and sample["max"] == 100
        # cumulative, Prometheus style: le=1 -> {0,1}, le=2 -> +{2},
        # le=5 -> +{3}, +Inf -> +{100}
        assert sample["buckets"] == [
            [1, 2], [2, 3], [5, 4], ["+Inf", 5]]

    def test_zero_bucket_captures_zero(self):
        h = MetricsRegistry().histogram("d", buckets=(0, 1, 2))
        h.observe(0)
        assert h._sample_dict()["buckets"][0] == [0, 1]


class TestSnapshot:
    def test_envelope_and_families(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help a").inc()
        reg.gauge("b").set(2)
        reg.histogram("c", buckets=(1, 2)).observe(1)
        snap = reg.snapshot(phase="test")
        assert snap["schema"] == "repro-metrics/1"
        assert snap["kind"] == "metrics-snapshot"
        assert snap["phase"] == "test"
        m = snap["metrics"]
        assert m["a_total"]["type"] == "counter"
        assert m["a_total"]["help"] == "help a"
        assert m["b"]["type"] == "gauge"
        assert m["c"]["type"] == "histogram"
        assert m["a_total"]["samples"][0]["value"] == 1

    def test_labeled_samples_carry_labels(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total")
        fam.labels(outcome="hit").inc(2)
        samples = reg.snapshot()["metrics"]["hits_total"]["samples"]
        labeled = [s for s in samples if s["labels"]]
        assert labeled == [{"value": 2, "labels": {"outcome": "hit"}}]

    def test_summary_is_text(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(3)
        text = reg.summary("t")
        assert "t:" in text and "a_total" in text and "3" in text


class TestNullRegistry:
    def test_disabled_and_noop(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("x")
        assert c is NULL_METRIC
        # all mutators are harmless no-ops
        c.inc()
        c.dec()
        c.set(9)
        c.set_total(9)
        c.observe(9)
        assert c.labels(a="b") is c
        assert c.value == 0

    def test_snapshot_still_enveloped(self):
        snap = NULL_REGISTRY.snapshot()
        assert snap["schema"] == "repro-metrics/1"
        assert snap["metrics"] == {}
        assert "disabled" in NULL_REGISTRY.summary()
