"""Format-shape tests for the Prometheus text exposition renderer."""

import re

from repro.metrics import MetricsRegistry, render_prometheus

#: Prometheus text format 0.0.4: a sample line is
#: ``name{labels} value`` with a valid metric name.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"        # metric name
    r"(\{[^{}]*\})?"                     # optional label set
    r" -?(\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$")


def _render(reg):
    return render_prometheus(reg.snapshot())


def _lines(text):
    return [l for l in text.strip().split("\n") if l]


class TestShape:
    def test_every_line_is_comment_or_sample(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs run").inc(3)
        reg.gauge("depth", "queue depth").set(-2)
        h = reg.histogram("lat_seconds", "latency", buckets=(1, 2, 5))
        h.observe(1.5)
        h.labels(phase="parse").observe(0.5)
        for line in _lines(_render(reg)):
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_RE.match(line), line

    def test_help_and_type_precede_samples(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs run").inc()
        lines = _lines(_render(reg))
        assert lines[0] == "# HELP jobs_total jobs run"
        assert lines[1] == "# TYPE jobs_total counter"
        assert lines[2] == "jobs_total 1"

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "l", buckets=(1, 2))
        for v in (0.5, 1.5, 99):
            h.observe(v)
        text = _render(reg)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert re.search(r"^lat_sum 101\.0$", text, re.M)
        assert re.search(r"^lat_count 3$", text, re.M)

    def test_bucket_counts_are_cumulative_nondecreasing(self):
        reg = MetricsRegistry()
        h = reg.histogram("d", buckets=(1, 2, 5, 10))
        for v in (0, 1, 1, 3, 7, 100):
            h.observe(v)
        counts = [
            int(m.group(1))
            for m in re.finditer(r'^d_bucket\{le="[^"]+"\} (\d+)$',
                                 _render(reg), re.M)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 6  # +Inf equals _count

    def test_label_escaping_and_name_sanitization(self):
        reg = MetricsRegistry()
        fam = reg.counter("weird.name-total", "h")
        fam.labels(proc='a"b\\c\nd').inc()
        text = _render(reg)
        assert "weird_name_total" in text
        assert r'proc="a\"b\\c\nd"' in text

    def test_gauge_value_renders(self):
        reg = MetricsRegistry()
        reg.gauge("util").labels(pid="7").set(0.75)
        assert 'util{pid="7"} 0.75' in _render(reg)
