"""``repro bench-check``: comparison modes, baselines, the gate."""

import json
import time

import pytest

from repro.metrics import benchcheck
from repro.metrics.benchcheck import (
    bench_check,
    compare,
    load_bench_json,
    normalized_cost,
)


def _rows_by_key(rows):
    return {r[0]: r for r in rows}


class TestCompareModes:
    BASE = {
        "values": {"exact_v": 100, "cost": 2.0, "speed": 10.0,
                   "ratio_v": 1.0},
        "checks": {"exact_v": "exact", "cost": "max", "speed": "min",
                   "ratio_v": "ratio"},
    }

    def test_all_pass_at_baseline(self):
        rows = compare(self.BASE, dict(self.BASE["values"]), 0.15)
        assert all(r[4] for r in rows)

    def test_exact_rejects_any_drift(self):
        cur = dict(self.BASE["values"], exact_v=101)
        assert not _rows_by_key(
            compare(self.BASE, cur, 0.5))["exact_v"][4]

    def test_max_allows_tolerance_above(self):
        cur = dict(self.BASE["values"], cost=2.2)
        assert _rows_by_key(compare(self.BASE, cur, 0.15))["cost"][4]
        cur["cost"] = 2.4
        assert not _rows_by_key(
            compare(self.BASE, cur, 0.15))["cost"][4]

    def test_max_always_allows_improvement(self):
        cur = dict(self.BASE["values"], cost=0.1)
        assert _rows_by_key(compare(self.BASE, cur, 0.0))["cost"][4]

    def test_min_allows_tolerance_below(self):
        cur = dict(self.BASE["values"], speed=9.0)
        assert _rows_by_key(compare(self.BASE, cur, 0.15))["speed"][4]
        cur["speed"] = 8.0
        assert not _rows_by_key(
            compare(self.BASE, cur, 0.15))["speed"][4]

    def test_ratio_symmetric(self):
        for cur_v, ok in ((1.1, True), (0.9, True), (1.2, False),
                          (0.8, False)):
            cur = dict(self.BASE["values"], ratio_v=cur_v)
            got = _rows_by_key(
                compare(self.BASE, cur, 0.15))["ratio_v"][4]
            assert got is ok, cur_v

    def test_missing_value_fails(self):
        cur = dict(self.BASE["values"])
        del cur["cost"]
        row = _rows_by_key(compare(self.BASE, cur, 0.15))["cost"]
        assert not row[4] and "missing" in row[5]

    def test_unknown_mode_fails(self):
        base = {"values": {"x": 1}, "checks": {"x": "wat"}}
        row = compare(base, {"x": 1}, 0.15)[0]
        assert not row[4] and "unknown" in row[5]


class TestNormalizedCost:
    def test_returns_best_ratio_and_result(self):
        calls = []

        def measure():
            calls.append(1)
            time.sleep(0.001)
            return "payload"

        ratio, dt, calib, result = normalized_cost(measure, repeats=2)
        assert len(calls) == 2
        assert result == "payload"
        assert ratio > 0 and dt > 0 and calib > 0
        assert ratio == pytest.approx(dt / calib)


class TestGate:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_missing_baseline_is_exit_2(self, tmp_path, capsys):
        rc = bench_check(str(tmp_path / "BENCH_nope.json"))
        assert rc == 2

    def test_malformed_baseline_is_exit_2(self, tmp_path):
        path = self._write(tmp_path / "BENCH_x.json", {"no": "values"})
        assert bench_check(path) == 2

    def test_unknown_scenario_without_current_is_exit_2(self,
                                                        tmp_path):
        path = self._write(
            tmp_path / "BENCH_mystery.json",
            {"bench": "mystery", "values": {"x": 1}, "checks": {}})
        assert bench_check(path) == 2

    def test_current_file_pass_and_fail(self, tmp_path):
        lines = []
        base = self._write(
            tmp_path / "BENCH_b.json",
            {"bench": "b", "values": {"n": 5, "cost": 1.0},
             "checks": {"n": "exact", "cost": "max"}})
        good = self._write(
            tmp_path / "cur_good.json",
            {"values": {"n": 5, "cost": 1.05}})
        bad = self._write(
            tmp_path / "cur_bad.json",
            {"values": {"n": 5, "cost": 2.0}})
        assert bench_check(base, tolerance=0.15, current_path=good,
                           out=lines.append) == 0
        assert bench_check(base, tolerance=0.15, current_path=bad,
                           out=lines.append) == 1
        text = "\n".join(lines)
        assert "ok " in text and "FAIL" in text

    def test_update_writes_baseline_from_current(self, tmp_path):
        base = tmp_path / "BENCH_b.json"
        cur = self._write(tmp_path / "cur.json",
                          {"values": {"n": 1}, "checks": {}})
        rc = bench_check(str(base), current_path=cur, update=True,
                         out=lambda *_: None)
        assert rc == 0
        written = json.loads(base.read_text())
        assert written["values"] == {"n": 1}
        # and the gate now passes against itself
        assert bench_check(str(base), current_path=cur,
                           out=lambda *_: None) == 0


@pytest.mark.slow
class TestScenarioIntegration:
    """The real simulation scenario: deterministic counters are
    reproducible, and an artificially slowed kernel trips the
    normalized-cost gate."""

    def test_simulation_scenario_self_consistent(self, monkeypatch,
                                                 tmp_path):
        # shrink the window so the test stays quick
        monkeypatch.setattr(benchcheck, "_SIM_UNTIL_FS", 100 * 10**6)
        first = benchcheck.scenario_simulation()
        assert first["schema"] == "repro-metrics/1"
        assert first["kind"] == "bench"
        base = tmp_path / "BENCH_simulation.json"
        base.write_text(json.dumps(first))
        second = benchcheck.scenario_simulation()
        rows = compare(first, second["values"], tolerance=10.0)
        by_key = _rows_by_key(rows)
        for key in ("cycles", "delta_cycles", "signal_events",
                    "signal_transactions", "process_resumes"):
            assert by_key[key][4], (key, by_key[key])

    def test_slowed_kernel_fails_gate(self, monkeypatch, tmp_path):
        monkeypatch.setattr(benchcheck, "_SIM_UNTIL_FS", 100 * 10**6)
        baseline = benchcheck.scenario_simulation()

        from repro.sim.kernel import Kernel

        # ``run()`` drives the per-cycle hook directly (the calendar
        # scheduler peeks the heap once per cycle, not twice), so the
        # slowdown is injected there.
        orig = Kernel._cycle

        def slowed(self, tn):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 2e-4:
                pass
            return orig(self, tn)

        monkeypatch.setattr(Kernel, "_cycle", slowed)
        slow = benchcheck.scenario_simulation()
        rows = compare(baseline, slow["values"], tolerance=0.5)
        by_key = _rows_by_key(rows)
        assert not by_key["normalized_cost"][4]
        # semantics unchanged: exact counters still match
        assert by_key["cycles"][4]
