"""End-to-end CLI tests for the metrics flags and bench-check."""

import json
import os

import pytest

from repro.cli import main

DESIGN = """
entity demo is end demo;
architecture rtl of demo is
  signal clk   : bit := '0';
  signal count : integer := 0;
begin
  clock : process
  begin
    clk <= not clk after 10 ns;
    wait on clk;
  end process;
  counter : process (clk)
  begin
    if clk'event and clk = '1' then
      count <= count + 1;
    end if;
  end process;
end rtl;
"""


@pytest.fixture()
def collect():
    lines = []

    def out(text=""):
        lines.append(str(text))

    out.lines = lines
    return out


def _design(tmp_path):
    path = tmp_path / "demo.vhd"
    path.write_text(DESIGN)
    return str(path)


class TestSimMetrics:
    def test_metrics_out_snapshot_and_top_table(self, tmp_path,
                                                collect):
        src = _design(tmp_path)
        mpath = str(tmp_path / "m.json")
        rc = main(["--root", str(tmp_path / "libs"),
                   "sim", src, "--until", "200ns",
                   "--metrics-out", mpath, "--top", "2"],
                  out=collect)
        assert rc == 0
        text = "\n".join(collect.lines)
        assert "hot processes" in text
        assert "counter" in text and "clk" in text  # sensitivity col
        with open(mpath) as f:
            snap = json.load(f)
        assert snap["schema"] == "repro-metrics/1"
        assert snap["kind"] == "metrics-snapshot"
        m = snap["metrics"]
        # one snapshot covers compile -> elaborate -> simulate
        assert m["sim_cycles_total"]["samples"][0]["value"] > 0
        assert "ag_rule_firings_total" in m
        assert "compile_phase_seconds" in m

    def test_prometheus_output(self, tmp_path, collect):
        src = _design(tmp_path)
        mpath = str(tmp_path / "m.prom")
        rc = main(["--root", str(tmp_path / "libs"),
                   "sim", src, "--until", "100ns",
                   "--metrics-out", mpath,
                   "--metrics-format", "prometheus"],
                  out=collect)
        assert rc == 0
        with open(mpath) as f:
            text = f.read()
        assert "# TYPE sim_cycles_total counter" in text
        assert "sim_deltas_per_timestep_bucket" in text

    def test_metrics_flag_prints_summary(self, tmp_path, collect):
        src = _design(tmp_path)
        rc = main(["--root", str(tmp_path / "libs"),
                   "sim", src, "--until", "100ns", "--metrics"],
                  out=collect)
        assert rc == 0
        assert any("famil" in l for l in collect.lines)

    def test_no_metrics_flags_no_table(self, tmp_path, collect):
        src = _design(tmp_path)
        rc = main(["--root", str(tmp_path / "libs"),
                   "sim", src, "--until", "100ns"], out=collect)
        assert rc == 0
        assert not any("hot processes" in l for l in collect.lines)


class TestStatsEnvelope:
    def test_stats_json_shares_envelope(self, collect):
        rc = main(["stats", "--json"], out=collect)
        assert rc == 0
        blob = next(l for l in collect.lines
                    if l.lstrip().startswith("{"))
        data = json.loads(blob)
        assert data["schema"] == "repro-metrics/1"
        assert data["kind"] == "ag-stats"
        assert data["grammars"]


class TestBenchCheckCLI:
    def test_gate_with_current_file(self, tmp_path, collect):
        base = tmp_path / "BENCH_x.json"
        base.write_text(json.dumps(
            {"bench": "x", "values": {"n": 3}, "checks": {"n":
                                                          "exact"}}))
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps({"values": {"n": 3}}))
        rc = main(["bench-check", "--baseline", str(base),
                   "--current", str(cur)], out=collect)
        assert rc == 0
        cur.write_text(json.dumps({"values": {"n": 4}}))
        rc = main(["bench-check", "--baseline", str(base),
                   "--current", str(cur)], out=collect)
        assert rc == 1

    def test_multiple_baselines_with_current_rejected(self, tmp_path,
                                                      collect):
        base = tmp_path / "BENCH_x.json"
        base.write_text(json.dumps({"values": {}, "checks": {}}))
        rc = main(["bench-check", "--baseline", str(base),
                   "--baseline", str(base),
                   "--current", str(base)], out=collect)
        assert rc == 2

    def test_committed_baselines_have_envelope(self):
        here = os.path.dirname(__file__)
        bench_dir = os.path.normpath(
            os.path.join(here, "..", "..", "benchmarks"))
        for name in ("BENCH_simulation.json", "BENCH_incremental.json"):
            with open(os.path.join(bench_dir, name)) as f:
                data = json.load(f)
            assert data["schema"] == "repro-metrics/1"
            assert data["kind"] == "bench"
            assert data["values"] and data["checks"]
            assert set(data["checks"]) == set(data["values"])
