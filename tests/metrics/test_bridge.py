"""Bridges: kernel / logger / observer / build-report -> registry."""

from repro.metrics import NULL_REGISTRY, MetricsRegistry
from repro.metrics.bridge import (
    bridge_build_report,
    bridge_kernel,
    bridge_observer,
    bridge_severity_logger,
    format_hot_processes,
    hot_processes,
)
from repro.sim import Kernel

NS = 10**6


def _toggler_kernel(metrics=None):
    """A clock plus a follower sensitive to it."""
    k = Kernel(metrics=metrics)
    clk = k.signal("clk", 0)
    q = k.signal("q", 0)
    rt = k.rt

    def clock():
        while True:
            rt.assign(clk, ((1 - rt.read(clk), 10 * NS),))
            yield rt.wait([clk])

    def follower():
        while True:
            yield rt.wait([clk])
            rt.assign(q, ((rt.read(clk), 0),))

    k.process("clock", clock)
    k.process("follower", follower, sensitivity=[clk])
    return k, clk, q


class TestBridgeKernel:
    def test_per_signal_and_per_process_samples(self):
        k, clk, q = _toggler_kernel()
        k.run(until=100 * NS)
        reg = MetricsRegistry()
        bridge_kernel(reg, k)
        snap = reg.snapshot()["metrics"]
        ev = {
            s["labels"]["signal"]: s["value"]
            for s in snap["sim_signal_events_total"]["samples"]
            if s["labels"]
        }
        assert ev["clk"] == clk.events > 0
        assert ev["q"] == q.events > 0
        res = {
            s["labels"]["process"]: s["value"]
            for s in
            snap["sim_process_resumes_by_process_total"]["samples"]
            if s["labels"]
        }
        assert res["clock"] > 0 and res["follower"] > 0
        assert snap["sim_signals"]["samples"][0]["value"] == 2
        assert snap["sim_processes"]["samples"][0]["value"] == 2

    def test_null_registry_passthrough(self):
        k, _, _ = _toggler_kernel()
        assert bridge_kernel(NULL_REGISTRY, k) is NULL_REGISTRY

    def test_bridge_is_idempotent(self):
        k, _, _ = _toggler_kernel()
        k.run(until=50 * NS)
        reg = MetricsRegistry()
        bridge_kernel(reg, k)
        once = reg.snapshot()["metrics"]
        bridge_kernel(reg, k)  # harvest again -> same totals
        assert reg.snapshot()["metrics"][
            "sim_signal_events_total"] == once[
                "sim_signal_events_total"]


class TestHotProcesses:
    def test_ranked_with_sensitivity(self):
        k, clk, _ = _toggler_kernel()
        k.run(until=100 * NS)
        rows = hot_processes(k, top=5)
        assert len(rows) == 2
        names = {r[0] for r in rows}
        assert names == {"clock", "follower"}
        by_name = {r[0]: r for r in rows}
        assert by_name["follower"][3] == ["clk"]  # attribution
        assert by_name["clock"][3] == []
        # resumes populated even without a metrics registry
        assert all(r[1] > 0 for r in rows)

    def test_top_limits(self):
        k, _, _ = _toggler_kernel()
        k.run(until=50 * NS)
        assert len(hot_processes(k, top=1)) == 1

    def test_format_table(self):
        k, _, _ = _toggler_kernel()
        k.run(until=50 * NS)
        text = format_hot_processes(k, top=5)
        assert "hot processes" in text
        assert "clk" in text and "follower" in text


class TestSeverityLogger:
    def test_counts_by_severity(self):
        from repro.sim.vhdlio import SeverityLogger

        logger = SeverityLogger()
        logger.report("note", "n")
        logger.report("warning", "w")
        logger.report("warning", "w2")
        reg = MetricsRegistry()
        bridge_severity_logger(reg, logger)
        samples = reg.snapshot()["metrics"][
            "sim_assertions_total"]["samples"]
        counts = {
            s["labels"]["severity"]: s["value"]
            for s in samples if s["labels"]
        }
        assert counts["note"] == 1
        assert counts["warning"] == 2
        assert counts["error"] == 0


class TestObserverAndBuild:
    def test_bridge_observer(self):
        from repro.diag import AGObserver

        class Prod:
            def __init__(self, label):
                self.label = label

        obs = AGObserver()
        obs.record_firing(Prod("p1"), grammar="g")
        obs.record_firing(Prod("p1"), grammar="g")
        obs.record_firing(Prod("p2"), grammar="g")
        obs.record_hit()
        obs.record_miss()
        reg = MetricsRegistry()
        bridge_observer(reg, obs)
        snap = reg.snapshot()["metrics"]
        assert snap["ag_rule_firings_total"]["samples"][0][
            "value"] == 3
        assert snap["ag_memo_hits_total"]["samples"][0]["value"] == 1
        assert snap["ag_memo_misses_total"]["samples"][0][
            "value"] == 1

    def test_bridge_observer_none_is_noop(self):
        reg = MetricsRegistry()
        assert bridge_observer(reg, None) is reg
        assert reg.names() == []

    def test_bridge_build_report_worker_utilization(self):
        class Report:
            stats = {"hits": 2, "misses": 1, "ag_evaluations": 1}
            jobs = 2
            ag_stats = {}
            # two workers, 1s wall: pid 1 busy 1s, pid 2 busy 0.5s
            trace_events = [
                {"ph": "X", "pid": 1, "ts": 0.0, "dur": 1e6},
                {"ph": "X", "pid": 2, "ts": 0.0, "dur": 5e5},
            ]

        reg = MetricsRegistry()
        bridge_build_report(reg, Report())
        snap = reg.snapshot()["metrics"]
        cache = {
            s["labels"]["outcome"]: s["value"]
            for s in snap["build_cache_total"]["samples"]
            if s["labels"]
        }
        assert cache["hits"] == 2 and cache["misses"] == 1
        util = {
            s["labels"]["pid"]: s["value"]
            for s in snap["build_worker_utilization"]["samples"]
            if s["labels"]
        }
        assert util["1"] == 1.0
        assert abs(util["2"] - 0.5) < 1e-9
        assert snap["build_wall_seconds"]["samples"][0]["value"] == 1.0
