"""Tests for the persistent AVL map, including balance invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.applicative import AVLMap
from repro.applicative.avl import _balance


def check_invariants(node):
    """AVL balance and BST ordering for every node."""
    if node is None:
        return 0
    assert abs(_balance(node)) <= 1
    lh = check_invariants(node.left)
    rh = check_invariants(node.right)
    assert node.height == 1 + max(lh, rh)
    if node.left is not None:
        assert node.left.key < node.key
    if node.right is not None:
        assert node.right.key > node.key
    return node.height


class TestBasics:
    def test_empty(self):
        m = AVLMap()
        assert len(m) == 0
        assert not m
        assert m.get("x") is None

    def test_insert_and_get(self):
        m = AVLMap().insert("a", 1).insert("b", 2)
        assert m["a"] == 1
        assert m["b"] == 2
        assert len(m) == 2

    def test_replace_existing_key(self):
        m = AVLMap().insert("a", 1).insert("a", 2)
        assert m["a"] == 2
        assert len(m) == 1

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            AVLMap()["nope"]

    def test_contains(self):
        m = AVLMap().insert("k", None)
        assert "k" in m  # even with a None value
        assert "x" not in m

    def test_items_in_key_order(self):
        m = AVLMap.from_items([("c", 3), ("a", 1), ("b", 2)])
        assert list(m.items()) == [("a", 1), ("b", 2), ("c", 3)]

    def test_persistence_old_versions_unchanged(self):
        m1 = AVLMap().insert("a", 1)
        m2 = m1.insert("b", 2)
        m3 = m2.insert("a", 99)
        assert "b" not in m1
        assert m2["a"] == 1
        assert m3["a"] == 99

    def test_sequential_inserts_stay_balanced(self):
        m = AVLMap()
        for i in range(1000):
            m = m.insert(i, i)
        # A pathological BST would have height 1000.
        assert m.height() <= 15
        check_invariants(m._root)


class TestProperties:
    @given(st.dictionaries(st.integers(), st.integers()))
    def test_matches_dict_semantics(self, d):
        m = AVLMap.from_items(d.items())
        assert len(m) == len(d)
        for k, v in d.items():
            assert m[k] == v
        assert list(m.keys()) == sorted(d.keys())

    @given(st.lists(st.tuples(st.integers(), st.integers())))
    def test_invariants_after_any_insert_sequence(self, pairs):
        m = AVLMap.from_items(pairs)
        check_invariants(m._root)

    @given(st.lists(st.integers(), unique=True, min_size=1))
    def test_height_logarithmic(self, keys):
        m = AVLMap.from_items((k, None) for k in keys)
        n = len(keys)
        # AVL height bound: 1.44 * log2(n + 2)
        import math

        assert m.height() <= 1.45 * math.log2(n + 2) + 1

    @given(st.dictionaries(st.integers(), st.integers(), min_size=1),
           st.integers(), st.integers())
    def test_insert_does_not_mutate_old_map(self, d, k, v):
        m1 = AVLMap.from_items(d.items())
        snapshot = list(m1.items())
        m1.insert(k, v)
        assert list(m1.items()) == snapshot
