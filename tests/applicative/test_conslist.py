"""Tests for immutable cons lists, including hypothesis properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.applicative import NIL, Cons, concat, cons, from_iterable, to_list


class TestBasics:
    def test_nil_is_falsy_and_empty(self):
        assert not NIL
        assert len(NIL) == 0
        assert to_list(NIL) == []

    def test_cons_prepends(self):
        lst = cons(1, cons(2))
        assert to_list(lst) == [1, 2]
        assert len(lst) == 2

    def test_from_iterable_preserves_order(self):
        assert to_list(from_iterable([1, 2, 3])) == [1, 2, 3]

    def test_sharing_tails(self):
        tail = from_iterable([2, 3])
        a = cons(1, tail)
        b = cons(9, tail)
        assert a.tail is b.tail

    def test_equality(self):
        assert from_iterable([1, 2]) == from_iterable([1, 2])
        assert from_iterable([1]) != from_iterable([2])

    def test_concat_shares_right_operand(self):
        left = from_iterable([1])
        right = from_iterable([2, 3])
        joined = concat(left, right)
        assert to_list(joined) == [1, 2, 3]
        assert joined.tail is right

    def test_concat_nil_identity(self):
        xs = from_iterable([1, 2])
        assert to_list(concat(NIL, xs)) == [1, 2]
        assert to_list(concat(xs, NIL)) == [1, 2]

    def test_deep_list_iteration(self):
        n = 50000
        lst = from_iterable(range(n))
        assert len(lst) == n
        assert sum(lst) == sum(range(n))


class TestProperties:
    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_concat_is_list_concatenation(self, xs, ys):
        assert to_list(
            concat(from_iterable(xs), from_iterable(ys))
        ) == xs + ys

    @given(st.lists(st.integers()),
           st.lists(st.integers()),
           st.lists(st.integers()))
    def test_concat_associative(self, xs, ys, zs):
        a, b, c = (from_iterable(v) for v in (xs, ys, zs))
        assert to_list(concat(concat(a, b), c)) == to_list(
            concat(a, concat(b, c))
        )

    @given(st.lists(st.integers()))
    def test_roundtrip(self, xs):
        assert to_list(from_iterable(xs)) == xs

    @given(st.lists(st.integers()), st.integers())
    def test_cons_does_not_mutate(self, xs, x):
        base = from_iterable(xs)
        before = to_list(base)
        cons(x, base)
        assert to_list(base) == before
