"""Tests for the applicative environment and VHDL visibility rules."""

from repro.applicative import Env


class TestPersistence:
    def test_bind_returns_new_env(self):
        e1 = Env.EMPTY.bind("x", 1)
        e2 = e1.bind("x", 2)
        assert e1.lookup("x").entries == [1]
        assert e2.lookup("x").entries == [2]

    def test_paper_pattern_prepend_without_change(self):
        """'insert it at the front ... so that the old ENV value is not
        changed' (§4.3)."""
        old = Env.EMPTY.bind("a", "outer")
        snapshot = list(old.bindings())
        new = old.bind("a", "inner")
        assert list(old.bindings()) == snapshot
        assert new.lookup("a").entries == ["inner"]

    def test_scope_depth(self):
        env = Env.EMPTY.enter_scope().enter_scope()
        assert env.depth == 2


class TestShadowing:
    def test_inner_hides_outer(self):
        env = (
            Env.EMPTY.bind("x", "outer").enter_scope().bind("x", "inner")
        )
        assert env.lookup("x").entries == ["inner"]

    def test_missing_name(self):
        result = Env.EMPTY.bind("a", 1).lookup("b")
        assert not result
        assert result.entries == []

    def test_sole_helper(self):
        env = Env.EMPTY.bind("x", 42)
        assert env.lookup("x").sole() == 42
        env = env.bind("f", "f1", overloadable=True).bind(
            "f", "f2", overloadable=True
        )
        assert env.lookup("f").sole() is None


class TestOverloading:
    def test_overloadables_accumulate_within_scope(self):
        env = (
            Env.EMPTY
            .bind("f", "f1", overloadable=True)
            .bind("f", "f2", overloadable=True)
        )
        assert set(env.lookup("f").entries) == {"f2", "f1"}

    def test_overloadables_accumulate_across_scopes(self):
        env = (
            Env.EMPTY.bind("f", "outer", overloadable=True)
            .enter_scope()
            .bind("f", "inner", overloadable=True)
        )
        assert set(env.lookup("f").entries) == {"inner", "outer"}

    def test_non_overloadable_stops_accumulation(self):
        env = (
            Env.EMPTY.bind("f", "var", overloadable=False)
            .enter_scope()
            .bind("f", "fn", overloadable=True)
        )
        assert env.lookup("f").entries == ["fn"]

    def test_inner_non_overloadable_hides_outer_subprograms(self):
        env = (
            Env.EMPTY.bind("f", "fn", overloadable=True)
            .enter_scope()
            .bind("f", "var", overloadable=False)
        )
        assert env.lookup("f").entries == ["var"]


class TestUseVisibility:
    def test_direct_beats_potential(self):
        env = (
            Env.EMPTY.bind("t", "imported", via_use=True)
            .bind("t", "local")
        )
        assert env.lookup("t").entries == ["local"]

    def test_potential_visible_when_no_direct(self):
        env = Env.EMPTY.bind("t", "imported", via_use=True)
        assert env.lookup("t").entries == ["imported"]

    def test_conflicting_potential_homographs_hide_each_other(self):
        """Two .ALL imports with the same name: neither is visible."""
        env = (
            Env.EMPTY
            .bind("t", "from_pkg_a", via_use=True)
            .bind("t", "from_pkg_b", via_use=True)
        )
        result = env.lookup("t")
        assert not result
        assert result.conflict

    def test_same_entry_imported_twice_is_not_a_conflict(self):
        entry = object()
        env = (
            Env.EMPTY.bind("t", entry, via_use=True)
            .bind("t", entry, via_use=True)
        )
        assert env.lookup("t").entries == [entry]

    def test_overloadable_potential_homographs_all_visible(self):
        env = (
            Env.EMPTY
            .bind("f", "pkg_a_fn", via_use=True, overloadable=True)
            .bind("f", "pkg_b_fn", via_use=True, overloadable=True)
        )
        assert set(env.lookup("f").entries) == {"pkg_a_fn", "pkg_b_fn"}

    def test_individual_import_avoids_conflict(self):
        """§3.4: importing exactly the referenced identifier one by one
        avoids the homographic conflict a .ALL import would cause."""
        env = Env.EMPTY.bind("t", "from_pkg_a", via_use=True)
        assert env.lookup("t").entries == ["from_pkg_a"]


class TestBindAll:
    def test_bind_all_order(self):
        env = Env.EMPTY.bind_all([("a", 1), ("b", 2)])
        assert env.lookup("a").entries == [1]
        assert env.lookup("b").entries == [2]
        assert len(env) == 2
