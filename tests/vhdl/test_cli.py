"""Tests for the script-driven interface (python -m repro)."""

import os

import pytest

from repro.cli import _parse_time, main


@pytest.fixture()
def collect():
    lines = []

    def out(text=""):
        lines.append(str(text))

    out.lines = lines
    return out


BLINK = """
entity blink is end blink;
architecture rtl of blink is
  signal led : bit := '0';
  signal n : integer := 0;
begin
  process
  begin
    led <= not led;
    n <= n + 1;
    wait for 10 ns;
  end process;
end rtl;
"""


@pytest.fixture()
def project(tmp_path):
    src = tmp_path / "blink.vhd"
    src.write_text(BLINK)
    root = tmp_path / "libs"
    return str(src), str(root)


class TestParseTime:
    def test_units(self):
        assert _parse_time("10ns") == 10 * 10**6
        assert _parse_time("1 us") == 10**9
        assert _parse_time("2ms") == 2 * 10**12
        assert _parse_time("5000") == 5000

    def test_fractional(self):
        assert _parse_time("1.5ns") == 1_500_000


class TestCompileCommand:
    def test_compile_ok(self, project, collect):
        src, root = project
        rc = main(["--root", root, "compile", src], out=collect)
        assert rc == 0
        assert any("ok" in line for line in collect.lines)
        assert os.path.isdir(os.path.join(root, "work"))

    def test_compile_errors_reported(self, tmp_path, collect):
        bad = tmp_path / "bad.vhd"
        bad.write_text("""
            entity e is end e;
            architecture a of e is
              signal s : no_such_type;
            begin
            end a;
        """)
        rc = main(["compile", str(bad)], out=collect)
        assert rc == 1
        assert any("no_such_type" in line for line in collect.lines)

    def test_keep_going(self, tmp_path, collect):
        bad = tmp_path / "bad.vhd"
        bad.write_text("entity e is end e;\narchitecture a of ghost is"
                       "\nbegin\nend a;\n")
        rc = main(["compile", "--keep-going", str(bad)], out=collect)
        assert rc == 0


class TestListAndDump:
    def test_list(self, project, collect):
        src, root = project
        main(["--root", root, "compile", src], out=lambda *_: None)
        rc = main(["--root", root, "list"], out=collect)
        assert rc == 0
        assert "work.blink" in collect.lines
        assert "work.rtl(blink)" in collect.lines

    def test_dump(self, project, collect):
        src, root = project
        main(["--root", root, "compile", src], out=lambda *_: None)
        rc = main(["--root", root, "dump", "work", "rtl(blink)"],
                  out=collect)
        assert rc == 0
        assert any("ArchUnit" in line for line in collect.lines)


class TestSimulateCommand:
    def test_simulate_with_trace_and_vcd(self, project, tmp_path,
                                         collect):
        src, root = project
        main(["--root", root, "compile", src], out=lambda *_: None)
        vcd = str(tmp_path / "wave.vcd")
        rc = main([
            "--root", root, "simulate", "blink", "--until", "95ns",
            "--trace", "led", "--vcd", vcd,
        ], out=collect)
        assert rc == 0
        assert any("95 ns" in line for line in collect.lines)
        assert any(":blink:n" in line and "10" in line
                   for line in collect.lines)
        with open(vcd) as f:
            assert "$enddefinitions" in f.read()


class TestStats:
    def test_stats_table(self, collect):
        rc = main(["stats"], out=collect)
        assert rc == 0
        text = "\n".join(collect.lines)
        assert "vhdl_principal" in text
        assert "max visits" in text


class TestBuildCommand:
    def test_build_requires_root(self, project, collect):
        src, _root = project
        rc = main(["build", src], out=collect)
        assert rc == 2
        assert any("--root" in line for line in collect.lines)

    def test_build_then_warm_rebuild(self, project, collect):
        src, root = project
        rc = main(["--root", root, "build", src], out=collect)
        assert rc == 0
        assert any(line.startswith("compiled") for line in collect.lines)
        assert any("cache:" in line and "1 miss(es)" in line
                   for line in collect.lines)
        del collect.lines[:]
        rc = main(["--root", root, "build", src], out=collect)
        assert rc == 0
        assert any(line.startswith("hit") for line in collect.lines)
        assert any("0 AG evaluation(s)" in line
                   for line in collect.lines)

    def test_build_force_and_jobs_flags(self, project, collect):
        src, root = project
        main(["--root", root, "build", src], out=lambda *_: None)
        rc = main(["--root", root, "build", src, "--force",
                   "--jobs", "2"], out=collect)
        assert rc == 0
        assert any(line.startswith("compiled") and "forced" in line
                   for line in collect.lines)

    def test_build_reports_failures(self, tmp_path, collect):
        bad = tmp_path / "bad.vhd"
        bad.write_text("entity e is port ( x : in nosuch ); end e;")
        root = str(tmp_path / "libs")
        rc = main(["--root", root, "build", str(bad)], out=collect)
        assert rc == 1
        assert any(line.startswith("failed") for line in collect.lines)
