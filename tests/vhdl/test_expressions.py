"""Direct tests of the expression AG through exprEval — the §4.1
cascade boundary, with symbol-table-driven phrase structure."""

import pytest

from repro.vhdl.expr_grammar import ExprEvaluator
from repro.vhdl.lef import classify_char, classify_id, lef
from repro.vhdl.stdpkg import standard
from repro.vif.nodes import (
    ArraySubtype,
    IndexRange,
    ObjectEntry,
    ParamEntry,
    RecordType,
    SubprogramEntry,
)


@pytest.fixture(scope="module")
def world():
    std = standard()
    byte = ArraySubtype(
        name="byte", base_type=std.bit_vector,
        index_range=IndexRange(left=7, direction="downto", right=0))
    point = RecordType(name="point", field_names=["x", "y"],
                       field_types=[std.integer, std.integer])
    env = std.environment().enter_scope()
    objs = {
        "clk": ObjectEntry(name="clk", obj_class="signal",
                           vtype=std.bit, py="s_clk"),
        "data": ObjectEntry(name="data", obj_class="variable",
                            vtype=byte, py="v_data"),
        "count": ObjectEntry(name="count", obj_class="variable",
                             vtype=std.integer, py="v_count"),
        "p": ObjectEntry(name="p", obj_class="variable",
                         vtype=point, py="v_p"),
        "lim": ObjectEntry(name="lim", obj_class="constant",
                           vtype=std.integer, py="c_lim",
                           value=8, has_value=True),
    }
    fn = SubprogramEntry(
        name="inc", sub_kind="function",
        params=[ParamEntry(name="x", obj_class="constant", mode="in",
                           vtype=std.integer)],
        result=std.integer, py="f_inc")
    for name, entry in objs.items():
        env = env.bind(name, entry)
    env = env.bind("inc", fn, overloadable=True)
    env = env.bind("byte", byte).bind("point", point)
    ev = ExprEvaluator(std)
    return std, env, ev, byte


def run(world, toks, mode="M_EXPR", expected=None):
    std, env, ev, _ = world
    return ev(toks, mode, env, line=1, expected=expected)


def T(world, name):
    _, env, _, _ = world
    return classify_id(name, env)


class TestPhraseStructures:
    """The same shape, three phrase structures — §4.1's example."""

    def test_call(self, world):
        r = run(world, [T(world, "inc"), lef("LP", "("),
                        T(world, "count"), lef("RP", ")")])
        assert r["code"] == "f_inc(v_count)"
        assert r["type"].name == "integer"

    def test_index(self, world):
        r = run(world, [T(world, "data"), lef("LP", "("),
                        lef("INT", "3", 3), lef("RP", ")")])
        assert r["code"] == "ops.index(v_data, 3)"
        assert r["type"].name == "bit"

    def test_conversion(self, world):
        r = run(world, [T(world, "integer"), lef("LP", "("),
                        T(world, "count"), lef("RP", ")")])
        assert r["code"] == "v_count"

    def test_slice(self, world):
        r = run(world, [T(world, "data"), lef("LP", "("),
                        lef("INT", "7", 7), lef("DOWNTO", "downto"),
                        lef("INT", "4", 4), lef("RP", ")")])
        assert "ops.slice_" in r["code"]
        assert r["type"].index_range.length() == 4

    def test_qualified_expression(self, world):
        std, env, ev, _ = world
        r = run(world, [T(world, "bit"), lef("TICK", "'"),
                        lef("LP", "("), classify_char("'1'", env),
                        lef("RP", ")")])
        assert r["val"] == 1
        assert r["type"].name == "bit"


class TestOperatorsAndFolding:
    def test_constant_folding(self, world):
        r = run(world, [T(world, "lim"), lef("STAR", "*"),
                        lef("INT", "2", 2), lef("PLUS", "+"),
                        lef("INT", "1", 1)])
        assert r["has_val"] and r["val"] == 17

    def test_precedence(self, world):
        r = run(world, [lef("INT", "2", 2), lef("PLUS", "+"),
                        lef("INT", "3", 3), lef("STAR", "*"),
                        lef("INT", "4", 4)])
        assert r["val"] == 14

    def test_unary_minus_binds_low(self, world):
        # VHDL: -2 ** 2 is -(2**2)? No: ** binds tighter than sign.
        r = run(world, [lef("MINUS", "-"), lef("INT", "2", 2),
                        lef("POW", "**"), lef("INT", "2", 2)])
        assert r["val"] == -4

    def test_nonassociative_pow_rejected(self, world):
        r = run(world, [lef("INT", "2", 2), lef("POW", "**"),
                        lef("INT", "2", 2), lef("POW", "**"),
                        lef("INT", "2", 2)])
        assert r["msgs"]

    def test_signal_reads_collected(self, world):
        std, env, ev, _ = world
        r = run(world, [T(world, "clk"), lef("EQ", "="),
                        classify_char("'1'", env)])
        assert r["sigs"] == ["s_clk"]

    def test_type_error_reported(self, world):
        r = run(world, [T(world, "count"), lef("PLUS", "+"),
                        T(world, "clk")])
        assert any("'+'" in m for m in r["msgs"])

    def test_comparison_yields_boolean(self, world):
        r = run(world, [T(world, "count"), lef("LE", "<="),
                        T(world, "lim")])
        assert r["type"].name == "boolean"


class TestRecordsAndAttributes:
    def test_field_selection(self, world):
        r = run(world, [T(world, "p"), lef("DOT", "."),
                        lef("RAWID", "x", "x")])
        assert r["code"] == "ops.field(v_p, 'x')"

    def test_missing_field(self, world):
        r = run(world, [T(world, "p"), lef("DOT", "."),
                        lef("RAWID", "z", "z")])
        assert any("no field" in m for m in r["msgs"])

    def test_signal_event_attr(self, world):
        r = run(world, [T(world, "clk"), lef("TICK", "'"),
                        lef("RAWID", "event", "event")])
        assert r["code"] == "rt.event(s_clk)"
        assert r["type"].name == "boolean"

    def test_array_length(self, world):
        r = run(world, [T(world, "data"), lef("TICK", "'"),
                        lef("RAWID", "length", "length")])
        assert r["val"] == 8

    def test_type_attr_pos(self, world):
        r = run(world, [T(world, "integer"), lef("TICK", "'"),
                        lef("RAWID", "succ", "succ"), lef("LP", "("),
                        lef("INT", "4", 4), lef("RP", ")")])
        assert r["val"] == 5

    def test_reverse_range(self, world):
        r = run(world, [T(world, "data"), lef("TICK", "'"),
                        lef("RAWID", "reverse_range", "reverse_range")],
                mode="M_RANGE")
        assert (r["left_val"], r["direction"], r["right_val"]) == \
            (0, "to", 7)


class TestAggregates:
    def test_positional(self, world):
        _, _, _, byte = world
        toks = [lef("LP", "(")]
        for i in range(8):
            if i:
                toks.append(lef("COMMA", ","))
            toks.append(lef("INT", str(i % 2), i % 2))
        toks.append(lef("RP", ")"))
        r = run(world, toks, expected=byte)
        assert r["has_val"]
        assert r["val"].elems == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_others(self, world):
        std, env, ev, byte = world
        r = run(world, [lef("LP", "("), lef("OTHERS", "others"),
                        lef("ARROW", "=>"), classify_char("'1'", env),
                        lef("RP", ")")], expected=byte)
        assert r["val"].elems == [1] * 8

    def test_record_aggregate(self, world):
        std, env, ev, _ = world
        point = env.lookup("point").entries[0]
        r = run(world, [
            lef("LP", "("), lef("RAWID", "x", "x"),
            lef("ARROW", "=>"), lef("INT", "1", 1),
            lef("COMMA", ","), lef("RAWID", "y", "y"),
            lef("ARROW", "=>"), lef("INT", "2", 2), lef("RP", ")"),
        ], expected=point)
        assert "ops.record_from" in r["code"]

    def test_record_aggregate_missing_field(self, world):
        std, env, ev, _ = world
        point = env.lookup("point").entries[0]
        r = run(world, [
            lef("LP", "("), lef("RAWID", "x", "x"),
            lef("ARROW", "=>"), lef("INT", "1", 1), lef("RP", ")"),
        ], expected=point)
        assert any("misses" in m for m in r["msgs"])

    def test_aggregate_without_context_rejected(self, world):
        r = run(world, [lef("LP", "("), lef("INT", "1", 1),
                        lef("COMMA", ","), lef("INT", "2", 2),
                        lef("RP", ")")])
        assert any("expected type" in m for m in r["msgs"])


class TestTargetsAndErrors:
    def test_target_requires_name(self, world):
        r = run(world, [lef("INT", "1", 1)], mode="M_TARGET")
        assert not r["ok"]

    def test_unknown_identifier_message(self, world):
        r = run(world, [lef("RAWID", "ghost",
                            __import__("repro.vhdl.lef",
                                       fromlist=["LefError"])
                            .LefError("'ghost' is not visible"))])
        assert any("not visible" in m for m in r["msgs"])

    def test_syntax_error_becomes_message(self, world):
        r = run(world, [lef("PLUS", "+")])
        assert any("syntax" in m for m in r["msgs"])

    def test_ambiguous_enum_without_context(self, world):
        std, env, ev, _ = world
        r = run(world, [classify_char("'1'", env)])
        assert any("ambiguous" in m for m in r["msgs"])

    def test_enum_with_context_resolves(self, world):
        std, env, ev, _ = world
        r = run(world, [classify_char("'1'", env)], expected=std.bit)
        assert r["val"] == 1
