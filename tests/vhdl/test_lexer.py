"""Tests for the VHDL scanner."""

import pytest

from repro.ag import LexError
from repro.vhdl.lexer import scan


def kinds(text):
    return [t.kind for t in scan(text)]


class TestTokens:
    def test_identifiers_case_insensitive_value(self):
        toks = scan("Foo fOO")
        assert [t.value for t in toks] == ["foo", "foo"]
        assert toks[0].text == "Foo"

    def test_keywords(self):
        assert kinds("entity END Process") == [
            "kw_entity", "kw_end", "kw_process"]

    def test_integer_literals(self):
        toks = scan("42 1_000 2#1010# 16#FF# 1e3")
        assert [t.value for t in toks] == [42, 1000, 10, 255, 1000]

    def test_real_literals(self):
        toks = scan("3.14 1.0e2")
        assert toks[0].value == pytest.approx(3.14)
        assert toks[1].value == pytest.approx(100.0)

    def test_character_literal(self):
        toks = scan("'0' 'z'")
        assert [t.kind for t in toks] == ["CHAR", "CHAR"]
        assert toks[0].value == "'0'"

    def test_string_literal_with_escape(self):
        toks = scan('"he said ""hi"""')
        assert toks[0].value == 'he said "hi"'

    def test_bit_string_literals(self):
        toks = scan('B"1010" X"F" O"7"')
        assert [t.value for t in toks] == ["1010", "1111", "111"]

    def test_compound_delimiters(self):
        assert kinds("=> ** := /= >= <= <>") == [
            "ARROW", "POW", "COLONEQ", "NE", "GE", "LE", "BOX"]

    def test_comments(self):
        assert kinds("a -- comment with 'tick' and \"quote\"\nb") == [
            "ID", "ID"]

    def test_error_position(self):
        with pytest.raises(LexError) as info:
            scan("ok\n  $")
        assert info.value.line == 2


class TestTickDisambiguation:
    def test_attribute_tick(self):
        assert kinds("clk'event") == ["ID", "TICK", "ID"]

    def test_range_attribute(self):
        assert kinds("a'range") == ["ID", "TICK", "kw_range"]

    def test_qualified_expression(self):
        """bit'('1') — the classic "'('" hazard."""
        assert kinds("bit'('1')") == [
            "ID", "TICK", "LP", "CHAR", "RP"]

    def test_char_literal_after_paren_stays_char(self):
        assert kinds("('(','a')") == [
            "LP", "CHAR", "COMMA", "CHAR", "RP"]

    def test_tick_after_rparen(self):
        assert kinds("f(x)'left") == [
            "ID", "LP", "ID", "RP", "TICK", "ID"]
