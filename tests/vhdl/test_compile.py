"""Compiler front-end tests: units, declarations, diagnostics."""

import pytest

from repro.vhdl.compiler import CompileError, Compiler

from .helpers import compile_messages, compile_ok


class TestUnits:
    def test_entity_and_architecture(self):
        c, res = compile_ok("""
            entity e is
              port ( a : in bit; b : out bit );
            end e;
            architecture rtl of e is
            begin
              b <= a;
            end rtl;
        """)
        assert res.unit_names() == ["e", "rtl"]
        assert c.library.find_unit("work", "e").entry_kind == "entity"
        arch = c.library.find_architecture("work", "e", "rtl")
        assert arch.entity_name == "e"

    def test_package_and_body(self):
        c, res = compile_ok("""
            package util is
              constant width : integer := 8;
              function clamp (x : integer) return integer;
            end util;
            package body util is
              function clamp (x : integer) return integer is
              begin
                if x > width then
                  return width;
                end if;
                return x;
              end clamp;
            end util;
        """)
        pkg = c.library.find_unit("work", "util")
        assert pkg.entry_kind == "package"
        names = [getattr(d, "name", "") for d in pkg.decls]
        assert "width" in names and "clamp" in names
        body = c.library.find_package_body("work", "util")
        assert body is not None

    def test_strict_mode_raises(self):
        c = Compiler(strict=True)
        with pytest.raises(CompileError):
            c.compile("""
                entity e is end e;
                architecture a of e is
                  signal s : no_such_type;
                begin
                end a;
            """)

    def test_missing_entity_reported(self):
        _c, msgs = compile_messages("""
            architecture a of ghost is
            begin
            end a;
        """)
        assert any("ghost" in m for m in msgs)

    def test_source_line_count_convention(self):
        c = Compiler(strict=False)
        res = c.compile("""
            -- comment only

            entity e is end e;
        """)
        assert res.source_lines == 1


class TestDeclarations:
    def test_enum_type(self):
        c, _ = compile_ok("""
            package p is
              type state is (idle, run, halt);
            end p;
        """)
        pkg = c.library.find_unit("work", "p")
        st = [d for d in pkg.decls
              if getattr(d, "name", "") == "state"][0]
        assert st.literals == ["idle", "run", "halt"]

    def test_integer_and_subtype(self):
        c, _ = compile_ok("""
            package p is
              type small is range 0 to 15;
              subtype tiny is small range 0 to 3;
            end p;
        """)
        pkg = c.library.find_unit("work", "p")
        names = {getattr(d, "name", "") for d in pkg.decls}
        assert {"small", "tiny"} <= names

    def test_array_types(self):
        c, _ = compile_ok("""
            package p is
              type word is array (15 downto 0) of bit;
              type mem is array (natural range <>) of integer;
            end p;
        """)
        pkg = c.library.find_unit("work", "p")
        word = [d for d in pkg.decls
                if getattr(d, "name", "") == "word"][0]
        assert word.index_range.length() == 16
        mem = [d for d in pkg.decls
               if getattr(d, "name", "") == "mem"][0]
        assert mem.index_range is None

    def test_record_type(self):
        c, _ = compile_ok("""
            package p is
              type pair is record
                x : integer;
                y : integer;
              end record;
            end p;
        """)
        pkg = c.library.find_unit("work", "p")
        pair = [d for d in pkg.decls
                if getattr(d, "name", "") == "pair"][0]
        assert pair.field_names == ["x", "y"]

    def test_constant_requires_static_visibility(self):
        _c, msgs = compile_messages("""
            package p is
              constant c : integer := nothing + 1;
            end p;
        """)
        assert any("nothing" in m for m in msgs)

    def test_unconstrained_object_needs_initial_value(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : bit_vector;
            begin
            end a;
        """)
        assert any("unconstrained" in m for m in msgs)

    def test_duplicate_record_field_reported(self):
        _c, msgs = compile_messages("""
            package p is
              type r is record
                x : integer;
                x : bit;
              end record;
            end p;
        """)
        assert any("duplicate" in m for m in msgs)


class TestGeneratedCode:
    COUNTER = """
        entity e is
          port ( clk : in bit; q : out integer );
        end e;
        architecture rtl of e is
          signal n : integer := 0;
        begin
          process (clk)
          begin
            if clk = '1' then
              n <= n + 1;
            end if;
          end process;
          q <= n;
        end rtl;
    """

    def test_python_model_compiles(self):
        import ast

        c, _ = compile_ok(self.COUNTER)
        arch = c.library.find_architecture("work", "e", "rtl")
        ast.parse(arch.py_source)
        assert "def elaborate(ctx):" in arch.py_source
        assert "rt.assign(s_n" in arch.py_source

    def test_c_model_emitted(self):
        c, _ = compile_ok(self.COUNTER)
        arch = c.library.find_architecture("work", "e", "rtl")
        assert "#include" in arch.c_source
        assert "elaborate_rtl" in arch.c_source
        assert "kernel_assign(" in arch.c_source

    def test_vif_stored_and_dumpable(self):
        c, _ = compile_ok(self.COUNTER)
        text = c.library.dump_vif("work", "rtl(e)")
        assert "ArchUnit" in text
        assert "EntityUnit" in text or "@work.e" in text

    def test_sensitivity_process_gets_final_wait(self):
        c, _ = compile_ok(self.COUNTER)
        arch = c.library.find_architecture("work", "e", "rtl")
        assert "yield rt.wait([p_clk], None, None)" in arch.py_source

    def test_process_without_wait_diagnosed(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : bit;
            begin
              process
              begin
                s <= '1';
              end process;
            end a;
        """)
        assert any("no wait statement" in m for m in msgs)

    def test_wait_in_sensitivity_process_diagnosed(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : bit;
            begin
              process (s)
              begin
                wait for 1 ns;
              end process;
            end a;
        """)
        assert any("sensitivity list cannot contain wait" in m
                   for m in msgs)


class TestTypeChecking:
    def test_type_mismatch_in_assignment(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : bit;
            begin
              s <= 42;
            end a;
        """)
        assert any("bit" in m for m in msgs)

    def test_operator_type_error(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : integer := 0;
              signal b : bit;
            begin
              process (b)
              begin
                s <= s + b;
              end process;
            end a;
        """)
        assert any("'+'" in m or "+" in m for m in msgs)

    def test_condition_must_be_boolean(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : integer := 0;
            begin
              process
              begin
                if s then
                  s <= 0;
                end if;
                wait;
              end process;
            end a;
        """)
        assert any("boolean" in m for m in msgs)

    def test_case_completeness_diagnosed(self):
        _c, msgs = compile_messages("""
            entity e is end e;
            architecture a of e is
              signal s : bit := '0';
              signal q : bit;
            begin
              process (s)
              begin
                case s is
                  when '0' => q <= '1';
                end case;
              end process;
            end a;
        """)
        assert any("cover" in m for m in msgs)

    def test_reading_out_port_rejected(self):
        _c, msgs = compile_messages("""
            entity e is
              port ( q : out bit );
            end e;
            architecture a of e is
              signal s : bit;
            begin
              s <= q;
            end a;
        """)
        assert any("cannot be read" in m for m in msgs)


class TestCompileResultUnitNames:
    """Regression: unnamed units used to map to a silent "?"."""

    def test_named_units(self):
        c = Compiler(strict=False)
        res = c.compile("entity e is end e;")
        assert res.unit_names() == ["e"]

    def test_unnamed_unit_raises_clear_diagnostic(self):
        from repro.vhdl.compiler import CompileResult

        class Nameless:
            name = ""

        res = CompileResult([Nameless()], [], {}, 0, 0)
        with pytest.raises(CompileError, match="unnamed"):
            res.unit_names()
        # repr stays safe even for the pathological case.
        assert "<unnamed>" in repr(res)
