"""User-defined attributes (§3.2's visibility-by-selection showcase),
aliases, and physical-type arithmetic."""

from .helpers import NS, compile_messages, compile_ok, simulate


class TestUserDefinedAttributes:
    def test_attribute_on_signal(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              attribute max_load : integer;
              signal s : bit := '0';
              attribute max_load of s : signal is 42;
              signal r : integer := 0;
            begin
              process
              begin
                r <= s'max_load;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 42

    def test_user_attribute_shadows_predefined(self):
        """The paper's exact example: X'REVERSE_RANGE 'could be an
        element of the array X in case T has the user-defined
        attribute REVERSE_RANGE' — which reading applies depends on
        the symbol table."""
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              attribute reverse_range : integer;
              signal v : bit_vector(3 downto 0) := "0000";
              attribute reverse_range of v : signal is 7;
              signal r : integer := 0;
            begin
              process
              begin
                r <= v'reverse_range;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 7

    def test_predefined_reading_without_specification(self):
        """Same source text, no attribute specification: the
        predefined attribute applies (as a range)."""
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(3 downto 0) := "1010";
              signal n : integer := 0;
            begin
              process
                variable c : integer := 0;
              begin
                for i in v'reverse_range loop
                  c := c + 1;
                end loop;
                n <= c;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("n") == 4

    def test_attribute_value_must_be_static(self):
        _c, msgs = compile_messages("""
            entity top is end top;
            architecture a of top is
              attribute info : integer;
              signal s : bit := '0';
              signal dyn : integer := 1;
              attribute info of s : signal is dyn + 1;
            begin
            end a;
        """)
        assert any("static" in m for m in msgs)

    def test_unknown_attribute_name(self):
        _c, msgs = compile_messages("""
            entity top is end top;
            architecture a of top is
              signal s : bit := '0';
              attribute ghost of s : signal is 1;
            begin
            end a;
        """)
        assert any("not an attribute" in m for m in msgs)


class TestAliases:
    def test_alias_of_signal(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal long_descriptive_name : integer := 5;
              alias short : integer is long_descriptive_name;
              signal r : integer := 0;
            begin
              process
              begin
                r <= short + 1;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 6

    def test_alias_assignable(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal original : integer := 0;
              alias nickname : integer is original;
            begin
              process
              begin
                nickname <= 9;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("original") == 9

    def test_alias_target_must_be_whole_object(self):
        _c, msgs = compile_messages("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(3 downto 0) := "0000";
              alias lsb : bit is v(0);
            begin
            end a;
        """)
        assert any("whole object" in m for m in msgs)


class TestPhysicalTypes:
    def test_time_arithmetic(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              constant period : time := 10 ns;
              signal stamp : time := 0 fs;
            begin
              process
              begin
                wait for period + 5 ns;
                stamp <= now;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("stamp") == 15 * NS

    def test_time_scaling_by_integer(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal stamp : time := 0 fs;
            begin
              process
              begin
                wait for 3 * 5 ns;
                stamp <= now;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("stamp") == 15 * NS

    def test_unit_conversions_consistent(self):
        c, _ = compile_ok("""
            package t is
              constant a : time := 1 us;
              constant b : time := 1000 ns;
            end t;
        """)
        pkg = c.library.find_unit("work", "t")
        vals = {d.name: d.value for d in pkg.decls
                if getattr(d, "obj_class", "") == "constant"}
        assert vals["a"] == vals["b"]


class TestCaseInsensitivity:
    def test_mixed_case_references(self):
        sim = simulate("""
            ENTITY Top IS END Top;
            ARCHITECTURE A OF Top IS
              SIGNAL Counter : INTEGER := 0;
            BEGIN
              PROCESS
              BEGIN
                CoUnTeR <= COUNTER + 1;
                WAIT;
              END PROCESS;
            END A;
        """, "top")
        assert sim.value("counter") == 1
