"""Static (visit-sequence) evaluation of the real expression AG.

The paper's evaluators were statically generated; ours defaults to the
dynamic evaluator but the ordered-AG analysis must hold for the real
grammars too.  These tests run the emitted visit sequences of the
expression AG over genuine LEF parses and compare against the dynamic
result — the strongest cross-check the toolkit offers.
"""

import pytest

from repro.ag import StaticEvaluator
from repro.ag.lexer import ListScanner
from repro.vhdl import expr_sem
from repro.vhdl.expr_grammar import expr_grammar
from repro.vhdl.lef import classify_id, lef, mode_token
from repro.vhdl.stdpkg import standard
from repro.vif.nodes import ObjectEntry


@pytest.fixture(scope="module")
def env():
    std = standard()
    e = std.environment().enter_scope()
    e = e.bind("count", ObjectEntry(
        name="count", obj_class="variable", vtype=std.integer,
        py="v_count"))
    e = e.bind("clk", ObjectEntry(
        name="clk", obj_class="signal", vtype=std.bit, py="s_clk"))
    return e


def both_ways(env, tokens, mode="M_EXPR", expected=None):
    std = standard()
    compiled = expr_grammar()
    ctx = expr_sem.Ctx(env=env, std=std, line=1, expected=expected)
    inherited = {"ENV": env, "CTX": ctx}
    lef_tokens = [mode_token(mode)] + tokens
    dyn_tree = compiled.parse(ListScanner(lef_tokens))
    dyn = compiled.evaluate(dyn_tree, inherited, goals=["GOAL"])["GOAL"]
    stat_tree = compiled.parse(ListScanner(lef_tokens))
    stat = StaticEvaluator(compiled, inherited).goal_attributes(
        stat_tree, goals=["GOAL"])["GOAL"]
    return dyn, stat


class TestStaticAgreement:
    def test_expression_ag_is_ordered(self):
        analysis = expr_grammar().analyze()
        assert analysis.max_visits >= 1

    @pytest.mark.parametrize("tokens_fn", [
        lambda env: [lef("INT", "1", 1), lef("PLUS", "+"),
                     lef("INT", "2", 2)],
        lambda env: [classify_id("count", env), lef("STAR", "*"),
                     lef("INT", "3", 3)],
        lambda env: [classify_id("clk", env), lef("TICK", "'"),
                     lef("RAWID", "event", "event")],
        lambda env: [lef("LP", "("), lef("INT", "1", 1),
                     lef("PLUS", "+"), lef("INT", "2", 2),
                     lef("RP", ")"), lef("STAR", "*"),
                     lef("INT", "4", 4)],
        lambda env: [lef("NOT", "not"), lef("LP", "("),
                     classify_id("count", env), lef("GT", ">"),
                     lef("INT", "0", 0), lef("RP", ")")],
    ])
    def test_static_matches_dynamic(self, env, tokens_fn):
        dyn, stat = both_ways(env, tokens_fn(env))
        assert dyn["code"] == stat["code"]
        assert dyn["val"] == stat["val"]
        assert dyn["msgs"] == stat["msgs"]
        assert dyn["sigs"] == stat["sigs"]

    def test_static_range_mode(self, env):
        dyn, stat = both_ways(
            env,
            [lef("INT", "0", 0), lef("TO", "to"),
             classify_id("count", env)],
            mode="M_RANGE")
        assert dyn["left_code"] == stat["left_code"]
        assert dyn["right_code"] == stat["right_code"]

    def test_static_target_mode(self, env):
        dyn, stat = both_ways(
            env, [classify_id("count", env)], mode="M_TARGET")
        assert dyn["ok"] and stat["ok"]
        assert dyn["lvalue"].base is stat["lvalue"].base
