"""Tests for LEF classification — the cascaded-evaluation boundary."""

from repro.applicative import Env
from repro.vhdl.lef import LefError, classify_char, classify_id
from repro.vhdl.stdpkg import standard
from repro.vif.nodes import ObjectEntry, SubprogramEntry


def std_env():
    return standard().environment()


class TestClassification:
    def test_type_mark(self):
        tok = classify_id("integer", std_env())
        assert tok.kind == "TYPEMARK"
        assert tok.value.name == "integer"

    def test_object(self):
        obj = ObjectEntry(name="x", obj_class="variable",
                          vtype=standard().integer, py="v_x")
        env = std_env().bind("x", obj)
        tok = classify_id("x", env)
        assert tok.kind == "OBJ"
        assert tok.value is obj

    def test_subprogram_set(self):
        f1 = SubprogramEntry(name="f", sub_kind="function", params=[],
                             result=standard().integer, py="f_1")
        f2 = SubprogramEntry(name="f", sub_kind="function", params=[],
                             result=standard().bit, py="f_2")
        env = std_env().bind("f", f1, overloadable=True).bind(
            "f", f2, overloadable=True)
        tok = classify_id("f", env)
        assert tok.kind == "NAMESET"
        assert set(tok.value) == {f1, f2}

    def test_enum_literal(self):
        tok = classify_id("true", std_env())
        assert tok.kind == "NAMESET"
        assert tok.value[0].entry_kind == "enum_literal"

    def test_physical_unit(self):
        tok = classify_id("ns", std_env())
        assert tok.kind == "UNIT"
        assert tok.value.scale == 10**6

    def test_unknown_becomes_rawid(self):
        tok = classify_id("mystery", std_env())
        assert tok.kind == "RAWID"
        assert isinstance(tok.value, LefError)

    def test_same_name_different_denotation_different_token(self):
        """The §4.1 premise: classification depends on the ENV."""
        obj = ObjectEntry(name="bit", obj_class="variable",
                          vtype=standard().integer, py="v_bit")
        inner = std_env().enter_scope().bind("bit", obj)
        assert classify_id("bit", std_env()).kind == "TYPEMARK"
        assert classify_id("bit", inner).kind == "OBJ"

    def test_conflicting_imports_become_rawid(self):
        env = (Env.EMPTY
               .bind("t", "a", via_use=True)
               .bind("t", "b", via_use=True))
        tok = classify_id("t", env)
        assert tok.kind == "RAWID"
        assert "conflicting" in tok.value.message

    def test_alias_dereferenced(self):
        from repro.vif.nodes import AliasEntry

        obj = ObjectEntry(name="x", obj_class="variable",
                          vtype=standard().integer, py="v_x")
        alias = AliasEntry(name="y", target=obj, vtype=obj.vtype)
        env = std_env().bind("y", alias)
        tok = classify_id("y", env)
        assert tok.kind == "OBJ"
        assert tok.value is obj


class TestCharLiterals:
    def test_bit_char(self):
        tok = classify_char("'1'", std_env())
        assert tok.kind == "NAMESET"
        kinds = {e.etype.name for e in tok.value}
        assert "bit" in kinds and "character" in kinds

    def test_unknown_char_type(self):
        tok = classify_char("'j'", Env.EMPTY)
        assert tok.kind == "RAWID"
