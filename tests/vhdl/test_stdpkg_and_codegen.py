"""Tests for package STANDARD and the two code-generation back ends."""

import pytest

from repro.vhdl.codegen.cmodel import c_model_for_unit
from repro.vhdl.semantics_decl import indent, ln, render
from repro.vhdl.stdpkg import standard

from .helpers import compile_ok


class TestStandardPackage:
    def test_singleton(self):
        assert standard() is standard()

    def test_predefined_types_present(self):
        std = standard()
        env = std.environment()
        for name in ("bit", "boolean", "integer", "real", "time",
                     "character", "severity_level", "natural",
                     "positive", "string", "bit_vector"):
            assert env.lookup(name).entries, name

    def test_boolean_literals(self):
        std = standard()
        assert std.boolean.literals == ["false", "true"]
        assert std.boolean.position("true") == 1

    def test_character_type_has_128_positions(self):
        std = standard()
        assert len(std.character.literals) == 128
        assert std.character.literals[ord("a")] == "'a'"
        assert std.character.literals[0] == "nul"

    def test_time_units(self):
        std = standard()
        assert std.time.scale("ns") == 10**6
        assert std.time.scale("hr") == 3600 * 10**15
        assert std.time.image(5 * 10**6) == "5 ns"

    def test_natural_positive_subtypes(self):
        std = standard()
        assert std.natural.effective_low == 0
        assert std.positive.effective_low == 1
        assert std.natural.base() is std.integer

    def test_standard_is_a_std_library_unit(self):
        std = standard()
        assert std.package._vif_home[:2] == ("std", "standard")
        assert std.payload["library"] == "std"

    def test_now_function(self):
        std = standard()
        entries = std.environment().lookup("now").entries
        assert entries and entries[0].predefined_op == "now"


class TestCodeLineModel:
    def test_render_indentation(self):
        lines = [ln("a = 1"), ln("if x:"), ln("b = 2", 1)]
        text = render(lines)
        assert text == "a = 1\nif x:\n    b = 2"

    def test_indent_shifts_depth(self):
        lines = indent([ln("x"), ln("y", 1)], by=2)
        assert lines == [(2, "x"), (3, "y")]

    def test_render_with_base(self):
        assert render([ln("x")], base_indent=1) == "    x"


class TestCModel:
    def test_structure(self):
        body = [
            ln("rt = ctx.rt"),
            ln("s_x = ctx.signal('x', init=0)"),
            ln("def _p_main():"),
            ln("while True:", 1),
            ln("if ops.eq(rt.read(s_x), 1):", 2),
            ln("rt.assign(s_x, ((0, 0),), transport=False)", 3),
            ln("yield rt.wait([s_x], None, None)", 2),
            ln("ctx.process('main', _p_main)"),
        ]
        c = c_model_for_unit("architecture", "rtl", body)
        assert c.startswith("/* Generated")
        assert "void elaborate_rtl(elab_ctx_t *ctx)" in c
        assert "elab_signal(ctx, " in c
        assert "kernel_assign(" in c
        assert "SUSPEND kernel_wait(proc, " in c
        # Braces balance.
        assert c.count("{") == c.count("}")

    def test_name_mangling(self):
        c = c_model_for_unit("architecture", "my-arch!", [])
        assert "elaborate_my_arch_" in c

    def test_braces_balance_on_real_unit(self):
        compiler, _ = compile_ok("""
            entity e is end e;
            architecture rtl of e is
              signal s : integer := 0;
            begin
              process
              begin
                for i in 0 to 3 loop
                  if s < 2 then
                    s <= s + 1;
                  else
                    s <= 0;
                  end if;
                end loop;
                wait;
              end process;
            end rtl;
        """)
        arch = compiler.library.find_architecture("work", "e", "rtl")
        c = arch.c_source
        assert c.count("{") == c.count("}")


class TestPyModel:
    def test_models_are_pure_python(self):
        import ast

        compiler, _ = compile_ok("""
            package p is
              constant k : integer := 3;
              function f (x : integer) return integer;
            end p;
            package body p is
              function f (x : integer) return integer is
              begin
                return x + k;
              end f;
            end p;
        """)
        for key in ("p", "body(p)"):
            node = compiler.library._units[("work", key)]
            tree = ast.parse(node.py_source)
            # Generated modules define exactly one function: elaborate.
            funcs = [n for n in tree.body
                     if isinstance(n, ast.FunctionDef)]
            assert [f.name for f in funcs] == ["elaborate"]

    def test_package_namespace_prefixing(self):
        compiler, _ = compile_ok("""
            package p is
              constant k : integer := 3;
            end p;
        """)
        pkg = compiler.library.find_unit("work", "p")
        assert "pkg_p_c_k = 3" in pkg.py_source
        assert "ctx.export" in pkg.py_source
