"""Shared helpers for VHDL compiler tests."""

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator

NS = 10**6  # fs per ns
US = 10**9


def compile_ok(source, library=None):
    """Compile and require zero diagnostics."""
    c = Compiler(library=library, strict=False)
    result = c.compile(source)
    assert result.messages == [], "\n".join(result.messages)
    return c, result


def compile_messages(source, library=None):
    """Compile and return the diagnostics list."""
    c = Compiler(library=library, strict=False)
    result = c.compile(source)
    return c, result.messages


def simulate(source, top, until_ns=1000, generics=None):
    """Compile, elaborate and run; returns the Simulation."""
    c, _result = compile_ok(source)
    elab = Elaborator(c.library)
    sim = elab.elaborate(top, generics=generics)
    sim.run(until_fs=until_ns * NS)
    return sim
