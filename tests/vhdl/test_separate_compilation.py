"""Separate compilation, context clauses, and configurations
(§3.3, §3.4 of the paper)."""

import pytest

from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator
from repro.vhdl.library import LibraryError, LibraryManager

from .helpers import NS, compile_messages, compile_ok


PKG = """
    package util is
      constant width : integer := 8;
      type state is (idle, busy);
      function bump (x : integer) return integer;
    end util;
    package body util is
      function bump (x : integer) return integer is
      begin
        return x + 1;
      end bump;
    end util;
"""


class TestUseClauses:
    def test_use_all(self):
        c = Compiler(strict=False)
        assert c.compile(PKG).ok
        res = c.compile("""
            use work.util.all;
            entity e is end e;
            architecture a of e is
              signal s : state := busy;
              signal n : integer := width;
            begin
            end a;
        """)
        assert res.ok, res.messages

    def test_use_individual_name(self):
        """§3.4: 'names declared within a compilation unit may be
        imported individually'."""
        c = Compiler(strict=False)
        c.compile(PKG)
        res = c.compile("""
            use work.util.width;
            entity e is end e;
            architecture a of e is
              signal n : integer := width;
            begin
            end a;
        """)
        assert res.ok, res.messages

    def test_unimported_name_invisible(self):
        c = Compiler(strict=False)
        c.compile(PKG)
        res = c.compile("""
            use work.util.width;
            entity e is end e;
            architecture a of e is
              signal s : state := idle;
            begin
            end a;
        """)
        assert any("state" in m for m in res.messages)

    def test_selected_name_without_use_all(self):
        c = Compiler(strict=False)
        c.compile(PKG)
        res = c.compile("""
            entity e is end e;
            architecture a of e is
              signal n : integer := work.util.width;
            begin
            end a;
        """)
        assert res.ok, res.messages

    def test_homograph_conflict_then_individual_import(self):
        """§3.4's punchline: two .ALL imports with a homograph hide it;
        importing the referenced identifier one by one avoids the
        conflict."""
        c = Compiler(strict=False)
        c.compile("""
            package p1 is
              constant k : integer := 1;
            end p1;
            package p2 is
              constant k : integer := 2;
            end p2;
        """)
        conflicted = c.compile("""
            use work.p1.all;
            use work.p2.all;
            entity e1 is end e1;
            architecture a of e1 is
              signal n : integer := k;
            begin
            end a;
        """)
        assert any("k" in m for m in conflicted.messages)
        resolved = c.compile("""
            use work.p1.k;
            entity e2 is end e2;
            architecture a of e2 is
              signal n : integer := k;
            begin
            end a;
        """)
        assert resolved.ok, resolved.messages

    def test_missing_library_clause_diagnosed(self):
        c = Compiler(strict=False)
        res = c.compile("""
            use mylib.p.all;
            entity e is end e;
            architecture a of e is
            begin
            end a;
        """)
        assert any("library" in m for m in res.messages)

    def test_package_constant_used_through_function(self):
        c = Compiler(strict=False)
        c.compile(PKG)
        res = c.compile("""
            use work.util.all;
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
            begin
              process
              begin
                r <= bump(width);
                wait;
              end process;
            end a;
        """)
        assert res.ok, res.messages
        sim = Elaborator(c.library).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("r") == 9


class TestLibraryManager:
    def test_reference_library_not_updatable(self):
        lib = LibraryManager(reference_libs=("vendor",))
        with pytest.raises(LibraryError):
            from repro.vif.nodes import PackageUnit

            lib.register_unit("vendor", PackageUnit(name="p"))

    def test_compile_order_tracked(self):
        c = Compiler(strict=False)
        c.compile("entity a is end a;")
        c.compile("entity b is end b;")
        keys = [k for l, k in c.library.compile_order if l == "work"]
        assert keys == ["a", "b"]

    def test_foreign_read_shares_nodes(self):
        c = Compiler(strict=False)
        c.compile(PKG)
        unit = c.library.read_foreign("work", "util")
        assert unit.name == "util"

    def test_disk_persistence_roundtrip(self, tmp_path):
        root = str(tmp_path / "libs")
        c = Compiler(root=root)
        c.compile("""
            entity e is
              port ( a : in bit; b : out bit );
            end e;
            architecture rtl of e is
            begin
              b <= a;
            end rtl;
        """)
        # A brand-new manager reloads from disk.
        lib2 = LibraryManager(root=root)
        arch = lib2.find_architecture("work", "e", "rtl")
        assert arch is not None
        assert "def elaborate" in arch.py_source
        ent = lib2.find_unit("work", "e")
        assert arch.entity is ent or arch.entity.name == "e"


LEAF = """
    entity leaf is
      generic ( delta : integer := 1 );
      port ( x : in integer; y : out integer );
    end leaf;
    architecture plus of leaf is
    begin
      y <= x + delta;
    end plus;
    architecture minus of leaf is
    begin
      y <= x - delta;
    end minus;
"""

TOP = """
    entity top is end top;
    architecture bench of top is
      component leaf
        generic ( delta : integer := 1 );
        port ( x : in integer; y : out integer );
      end component;
      signal a : integer := 10;
      signal b : integer := 0;
    begin
      u1 : leaf port map ( x => a, y => b );
    end bench;
"""


class TestConfiguration:
    def test_default_binding_latest_architecture(self):
        """§3.3: 'the default ... is the latest compiled architecture
        for that entity' — usage-history dependent."""
        c = Compiler(strict=False)
        c.compile(LEAF)
        c.compile(TOP)
        sim = Elaborator(c.library).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("b") == 9  # minus compiled last

    def test_default_binding_changes_with_recompile(self):
        """The non-determinism the paper warns about: recompiling an
        architecture changes what the same description elaborates to."""
        c = Compiler(strict=False)
        c.compile(LEAF)
        c.compile(TOP)
        # Recompile 'plus': it becomes the latest.
        c.compile("""
            architecture plus of leaf is
            begin
              y <= x + delta;
            end plus;
        """)
        sim = Elaborator(c.library).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("b") == 11

    def test_configuration_specification_in_architecture(self):
        c = Compiler(strict=False)
        c.compile(LEAF)
        c.compile("""
            entity top2 is end top2;
            architecture bench of top2 is
              component leaf
                generic ( delta : integer := 1 );
                port ( x : in integer; y : out integer );
              end component;
              for u1 : leaf use entity work.leaf(plus);
              signal a : integer := 10;
              signal b : integer := 0;
            begin
              u1 : leaf port map ( x => a, y => b );
            end bench;
        """)
        sim = Elaborator(c.library).elaborate("top2")
        sim.run(until_fs=NS)
        assert sim.value("b") == 11  # bound to plus despite minus later

    def test_configuration_unit(self):
        c = Compiler(strict=False)
        c.compile(LEAF)
        c.compile(TOP)
        c.compile("""
            configuration pick_plus of top is
              for bench
                for u1 : leaf use entity work.leaf(plus);
                end for;
              end for;
            end pick_plus;
        """)
        sim = Elaborator(c.library).elaborate("pick_plus")
        sim.run(until_fs=NS)
        assert sim.value("b") == 11

    def test_generic_map_in_instance(self):
        c = Compiler(strict=False)
        c.compile(LEAF)
        c.compile("""
            entity top3 is end top3;
            architecture bench of top3 is
              component leaf
                generic ( delta : integer := 1 );
                port ( x : in integer; y : out integer );
              end component;
              for all : leaf use entity work.leaf(plus);
              signal a : integer := 10;
              signal b : integer := 0;
            begin
              u1 : leaf generic map ( delta => 32 )
                        port map ( x => a, y => b );
            end bench;
        """)
        sim = Elaborator(c.library).elaborate("top3")
        sim.run(until_fs=NS)
        assert sim.value("b") == 42

    def test_unbound_component_reported_at_elaboration(self):
        from repro.vhdl.elaborate import ElaborationError

        c = Compiler(strict=False)
        c.compile("""
            entity top4 is end top4;
            architecture bench of top4 is
              component ghost
                port ( x : in integer );
              end component;
              signal a : integer := 0;
            begin
              u1 : ghost port map ( x => a );
            end bench;
        """)
        with pytest.raises(ElaborationError):
            Elaborator(c.library).elaborate("top4")


class TestPackageSignals:
    def test_global_signal_in_package(self):
        """VHDL packages may contain global signals (§3.3)."""
        c = Compiler(strict=False)
        res = c.compile("""
            package globals is
              signal heartbeat : integer := 7;
            end globals;
        """)
        assert res.ok, res.messages
        res = c.compile("""
            use work.globals.all;
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
            begin
              process
              begin
                r <= heartbeat + 1;
                wait;
              end process;
            end a;
        """)
        assert res.ok, res.messages
        sim = Elaborator(c.library).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("r") == 8
