"""End-to-end behavioral tests: compile, elaborate, simulate, check."""

import pytest

from .helpers import NS, compile_ok, simulate


class TestSequentialBehavior:
    def test_counter_with_reset(self):
        sim = simulate("""
            entity top is end top;
            architecture tb of top is
              signal clk : bit := '0';
              signal n : integer := 0;
            begin
              clock : process
              begin
                clk <= not clk after 5 ns;
                wait on clk;
              end process;
              count : process (clk)
              begin
                if clk'event and clk = '1' then
                  n <= n + 1;
                end if;
              end process;
            end tb;
        """, "top", until_ns=100)
        assert sim.value("n") == 10

    def test_variables_and_loops(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal total : integer := 0;
            begin
              process
                variable acc : integer := 0;
              begin
                for i in 1 to 10 loop
                  acc := acc + i;
                end loop;
                total <= acc;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("total") == 55

    def test_while_loop_and_exit(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
            begin
              process
                variable x : integer := 1;
              begin
                while true loop
                  x := x * 2;
                  exit when x > 100;
                end loop;
                r <= x;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 128

    def test_next_statement(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal odd_sum : integer := 0;
            begin
              process
                variable acc : integer := 0;
              begin
                for i in 1 to 9 loop
                  next when i mod 2 = 0;
                  acc := acc + i;
                end loop;
                odd_sum <= acc;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("odd_sum") == 25

    def test_case_statement(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              type op is (add, sub, nop);
              signal sel : op := sub;
              signal r : integer := 0;
            begin
              process (sel)
              begin
                case sel is
                  when add => r <= 10;
                  when sub => r <= 20;
                  when others => r <= 0;
                end case;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 20

    def test_case_range_choices(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal x : integer := 7;
              signal band : integer := 0;
            begin
              process (x)
              begin
                case x is
                  when 0 to 4 => band <= 1;
                  when 5 | 6 | 7 => band <= 2;
                  when others => band <= 3;
                end case;
              end process;
            end a;
        """, "top")
        assert sim.value("band") == 2

    def test_loop_param_does_not_clobber_outer(self):
        """VHDL scoping: the loop parameter is a new object."""
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
            begin
              process
                variable i : integer := 99;
              begin
                for i in 0 to 3 loop
                  null;
                end loop;
                r <= i;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 99


class TestSubprograms:
    def test_function_call(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
              function square (x : integer) return integer is
              begin
                return x * x;
              end square;
            begin
              process
              begin
                r <= square(7);
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 49

    def test_overloaded_functions(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal ri : integer := 0;
              signal rb : bit := '0';
              function pick (x : integer) return integer is
              begin
                return x + 1;
              end pick;
              function pick (x : bit) return bit is
              begin
                return not x;
              end pick;
            begin
              process
              begin
                ri <= pick(5);
                rb <= pick('0');
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("ri") == 6
        assert sim.value("rb") == 1

    def test_recursive_function(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
              function fact (n : integer) return integer is
              begin
                if n <= 1 then
                  return 1;
                end if;
                return n * fact(n - 1);
              end fact;
            begin
              process
              begin
                r <= fact(6);
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 720

    def test_nested_subprogram_uplevel_write(self):
        """The paper's §1 point: up-level references from nested
        subprograms (C lacked them; our models use nonlocal)."""
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
            begin
              process
                variable counter : integer := 0;
                procedure bump is
                begin
                  counter := counter + 1;
                end bump;
              begin
                bump;
                bump;
                bump;
                r <= counter;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 3

    def test_procedure_with_out_parameter(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
            begin
              process
                variable res : integer := 0;
                procedure double (x : in integer; y : out integer) is
                begin
                  y := x * 2;
                end double;
              begin
                double(21, res);
                r <= res;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 42

    def test_default_parameter(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal r : integer := 0;
              function inc (x : integer; by : integer := 5)
                  return integer is
              begin
                return x + by;
              end inc;
            begin
              process
              begin
                r <= inc(10);
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 15

    def test_user_overloaded_operator(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              type pair is record
                x : integer;
                y : integer;
              end record;
              signal r : integer := 0;
              function "+" (a : pair; b : pair) return integer is
              begin
                return a.x + b.x + a.y + b.y;
              end "+";
            begin
              process
                variable p : pair := (x => 1, y => 2);
                variable q : pair := (x => 3, y => 4);
              begin
                r <= p + q;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 10


class TestArraysAndAggregates:
    def test_bit_vector_ops(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(3 downto 0) := "0011";
              signal w : bit_vector(3 downto 0) := (others => '0');
              signal b : bit := '0';
            begin
              process
              begin
                w <= v and "0101";
                b <= v(0);
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("w").elems == [0, 0, 0, 1]
        assert sim.value("b") == 1

    def test_slices(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(7 downto 0) := "11110000";
              signal hi : bit_vector(3 downto 0) := "0000";
            begin
              process
              begin
                hi <= v(7 downto 4);
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("hi").elems == [1, 1, 1, 1]

    def test_concatenation_and_indexed_assign(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(3 downto 0) := "0000";
            begin
              process
                variable t : bit_vector(3 downto 0) := "0000";
              begin
                t := "01" & "10";
                t(3) := '1';
                v <= t;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("v").elems == [1, 1, 1, 0]

    def test_named_aggregate(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(3 downto 0) := (0 => '1', others => '0');
              signal r : bit := '0';
            begin
              process
              begin
                r <= v(0);
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 1

    def test_records(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              type point is record
                x : integer;
                y : integer;
              end record;
              signal r : integer := 0;
            begin
              process
                variable p : point := (x => 3, y => 4);
              begin
                p.y := 10;
                r <= p.x + p.y;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("r") == 13

    def test_array_attributes(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(7 downto 2) := (others => '0');
              signal l : integer := 0;
              signal n : integer := 0;
            begin
              process
              begin
                l <= v'left;
                n <= v'length;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("l") == 7
        assert sim.value("n") == 6

    def test_for_over_range_attribute(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal v : bit_vector(3 downto 0) := "1011";
              signal ones : integer := 0;
            begin
              process
                variable c : integer := 0;
              begin
                for i in 3 downto 0 loop
                  if v(i) = '1' then
                    c := c + 1;
                  end if;
                end loop;
                ones <= c;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("ones") == 3


class TestTimingSemantics:
    def test_after_and_transport(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal s : integer := 0;
            begin
              process
              begin
                s <= transport 1 after 10 ns, 2 after 20 ns;
                wait;
              end process;
            end a;
        """, "top", until_ns=15)
        assert sim.value("s") == 1
        sim.run(until_fs=25 * NS)
        assert sim.value("s") == 2

    def test_inertial_pulse_rejection(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal s : integer := 0;
            begin
              process
              begin
                s <= 1 after 10 ns;
                s <= 2 after 5 ns;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("s") == 2

    def test_signal_semantics_delta_read(self):
        """A signal assignment is not visible until the next delta."""
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal s : integer := 0;
              signal seen : integer := -1;
            begin
              process
              begin
                s <= 5;
                seen <= s;  -- still the old value
                wait;
              end process;
            end a;
        """, "top")
        assert sim.value("s") == 5
        assert sim.value("seen") == 0

    def test_wait_until_edge(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal clk : bit := '0';
              signal stamp : time := 0 fs;
            begin
              clock : process
              begin
                clk <= not clk after 7 ns;
                wait on clk;
              end process;
              watcher : process
              begin
                wait until clk = '1';
                stamp <= now;
                wait;
              end process;
            end a;
        """, "top", until_ns=50)
        assert sim.value("stamp") == 7 * NS

    def test_assert_error_logged(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal s : integer := 1;
            begin
              process
              begin
                assert s = 2 report "s is not two" severity error;
                wait;
              end process;
            end a;
        """, "top")
        assert sim.kernel.logger.errors() == 1
        assert sim.kernel.logger.records[0][3] == "s is not two"


class TestConcurrentStatements:
    def test_conditional_assignment(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal sel : bit := '1';
              signal x : integer := 0;
            begin
              x <= 10 when sel = '1' else 20;
            end a;
        """, "top")
        assert sim.value("x") == 10

    def test_selected_assignment(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              type st is (red, green, blue);
              signal s : st := green;
              signal code : integer := 0;
            begin
              with s select
                code <= 1 when red,
                        2 when green,
                        3 when others;
            end a;
        """, "top")
        assert sim.value("code") == 2

    def test_guarded_block(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal en : bit := '0';
              signal d : integer := 5;
              signal q : integer := 0;
            begin
              latch : block (en = '1')
              begin
                q <= guarded d;
              end block latch;
              stim : process
              begin
                wait for 10 ns;
                d <= 7;
                wait for 10 ns;
                en <= '1';
                wait;
              end process;
            end a;
        """, "top", until_ns=100)
        assert sim.value("q") == 7

    def test_resolved_signal_bus(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              function wired_or (bits : bit_vector) return bit is
              begin
                for i in bits'range loop
                  if bits(i) = '1' then
                    return '1';
                  end if;
                end loop;
                return '0';
              end wired_or;
              subtype rbit is wired_or bit;
              signal bus_line : rbit := '0';
            begin
              d0 : bus_line <= '0';
              d1 : bus_line <= '1' after 5 ns;
            end a;
        """, "top", until_ns=20)
        assert sim.value("bus_line") == 1


class TestConcurrentAssertion:
    def test_fires_on_violation(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal x : integer := 0;
            begin
              watchdog : assert x < 5
                report "x exceeded its bound" severity warning;
              bump : process
              begin
                wait for 10 ns;
                x <= 9;
                wait;
              end process;
            end a;
        """, "top", until_ns=50)
        assert sim.kernel.logger.counts["warning"] == 1
        assert sim.kernel.logger.records[-1][3] == \
            "x exceeded its bound"

    def test_quiet_when_condition_holds(self):
        sim = simulate("""
            entity top is end top;
            architecture a of top is
              signal x : integer := 0;
            begin
              watchdog : assert x < 5 severity warning;
              bump : process
              begin
                wait for 10 ns;
                x <= 4;
                wait;
              end process;
            end a;
        """, "top", until_ns=50)
        assert sim.kernel.logger.counts["warning"] == 0
