"""Tests for runtime support: predefined operations and values."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.runtime import RuntimeError_, VArray, VRecord, ops


class TestNumeric:
    def test_div_truncates_toward_zero(self):
        assert ops.div(7, 2) == 3
        assert ops.div(-7, 2) == -3
        assert ops.div(7, -2) == -3

    def test_div_by_zero(self):
        with pytest.raises(RuntimeError_):
            ops.div(1, 0)

    def test_mod_sign_of_divisor(self):
        assert ops.mod(7, 3) == 1
        assert ops.mod(-7, 3) == 2
        assert ops.mod(7, -3) == -2

    def test_rem_sign_of_dividend(self):
        assert ops.rem(7, 3) == 1
        assert ops.rem(-7, 3) == -1
        assert ops.rem(7, -3) == 1

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_div_mod_rem_identities(self, a, b):
        if b == 0:
            return
        # VHDL LRM identities.
        assert a == ops.mul(ops.div(a, b), b) + ops.rem(a, b)
        assert abs(ops.rem(a, b)) < abs(b)
        assert abs(ops.mod(a, b)) < abs(b)

    def test_pow_negative_integer_exponent_rejected(self):
        with pytest.raises(RuntimeError_):
            ops.pow_(2, -1)

    def test_abs_neg(self):
        assert ops.abs_(-5) == 5
        assert ops.neg(5) == -5


class TestLogical:
    def test_scalar_bit_ops(self):
        assert ops.and_(1, 1) == 1
        assert ops.or_(0, 0) == 0
        assert ops.xor(1, 0) == 1
        assert ops.nand(1, 1) == 0
        assert ops.nor(0, 0) == 1
        assert ops.not_(0) == 1

    def test_array_elementwise(self):
        a = VArray.from_list([1, 0, 1, 0])
        b = VArray.from_list([1, 1, 0, 0])
        assert ops.and_(a, b).elems == [1, 0, 0, 0]
        assert ops.or_(a, b).elems == [1, 1, 1, 0]
        assert ops.not_(a).elems == [0, 1, 0, 1]

    def test_length_mismatch_rejected(self):
        a = VArray.from_list([1, 0])
        b = VArray.from_list([1])
        with pytest.raises(RuntimeError_):
            ops.and_(a, b)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=16))
    def test_demorgan(self, bits):
        a = VArray.from_list(bits)
        b = VArray.from_list(list(reversed(bits)))
        lhs = ops.not_(ops.and_(a, b))
        rhs = ops.or_(ops.not_(a), ops.not_(b))
        assert lhs.elems == rhs.elems


class TestArrays:
    def test_index_downto(self):
        a = VArray(7, "downto", 4, [10, 11, 12, 13])
        assert ops.index(a, 7) == 10
        assert ops.index(a, 4) == 13

    def test_index_out_of_range(self):
        a = VArray(0, "to", 2, [1, 2, 3])
        with pytest.raises(RuntimeError_):
            ops.index(a, 3)

    def test_slice(self):
        a = VArray(7, "downto", 0, list(range(8)))
        s = ops.slice_(a, 5, "downto", 2)
        assert (s.left, s.right) == (5, 2)
        assert s.elems == [2, 3, 4, 5]

    def test_null_slice(self):
        a = VArray(0, "to", 3, [1, 2, 3, 4])
        s = ops.slice_(a, 2, "to", 1)
        assert len(s) == 0

    def test_slice_direction_mismatch(self):
        a = VArray(0, "to", 3, [1, 2, 3, 4])
        with pytest.raises(RuntimeError_):
            ops.slice_(a, 3, "downto", 0)

    def test_concat_keeps_left_bounds(self):
        a = VArray(7, "downto", 6, [1, 0])
        b = VArray(1, "downto", 0, [1, 1])
        c = ops.concat(a, b)
        assert c.elems == [1, 0, 1, 1]
        assert c.left == 7 and c.direction == "downto"

    def test_concat_scalar(self):
        a = VArray.from_list([1, 0])
        c = ops.concat(a, 1)
        assert c.elems == [1, 0, 1]
        c2 = ops.concat(0, a)
        assert c2.elems == [0, 1, 0]

    def test_array_update_is_persistent(self):
        a = VArray(0, "to", 2, [1, 2, 3])
        b = ops.array_update(a, 1, 9)
        assert a.elems == [1, 2, 3]
        assert b.elems == [1, 9, 3]

    def test_slice_update(self):
        a = VArray(7, "downto", 0, [0] * 8)
        v = VArray(3, "downto", 0, [1, 1, 1, 1])
        b = ops.slice_update(a, 5, "downto", 2, v)
        assert b.elems == [0, 0, 1, 1, 1, 1, 0, 0]

    def test_fill(self):
        a = ops.fill(3, "downto", 0, 7)
        assert a.elems == [7, 7, 7, 7]

    def test_aggregate_with_others(self):
        a = ops.array_from([1, 2], 0, "to", 4, others=0)
        assert a.elems == [1, 2, 0, 0, 0]

    def test_aggregate_length_mismatch(self):
        with pytest.raises(RuntimeError_):
            ops.array_from([1, 2, 3], 0, "to", 1)

    def test_range_attrs(self):
        a = VArray(7, "downto", 0, [0] * 8)
        assert ops.range_of(a) == (7, "downto", 0)
        assert ops.reverse_range_of(a) == (0, "to", 7)
        assert ops.length(a) == 8

    def test_lexicographic_comparison(self):
        a = VArray.from_list([1, 0])
        b = VArray.from_list([1, 1])
        assert ops.lt(a, b) == 1
        assert ops.eq(a, VArray.from_list([1, 0])) == 1

    def test_equality_ignores_bounds(self):
        # VHDL equality is element-wise, not bounds-wise.
        a = VArray(0, "to", 1, [1, 0])
        b = VArray(7, "downto", 6, [1, 0])
        assert ops.eq(a, b) == 1


class TestRecords:
    def test_field_access_and_update(self):
        r = VRecord([("a", 1), ("b", 2)])
        assert ops.field(r, "a") == 1
        r2 = ops.record_update(r, "a", 9)
        assert ops.field(r, "a") == 1
        assert ops.field(r2, "a") == 9

    def test_missing_field(self):
        r = VRecord([("a", 1)])
        with pytest.raises(RuntimeError_):
            ops.field(r, "z")

    def test_record_equality(self):
        assert ops.eq(VRecord([("a", 1)]), VRecord([("a", 1)]))


class TestChecksAndRanges:
    def test_check_range(self):
        assert ops.check_range(5, 0, 10) == 5
        with pytest.raises(RuntimeError_):
            ops.check_range(11, 0, 10, "count")

    def test_iter_range(self):
        assert list(ops.iter_range(0, "to", 3)) == [0, 1, 2, 3]
        assert list(ops.iter_range(3, "downto", 0)) == [3, 2, 1, 0]
        assert list(ops.iter_range(2, "to", 1)) == []

    def test_succ_pred(self):
        assert ops.succ(1, 3) == 2
        assert ops.pred(1, 0) == 0
        with pytest.raises(RuntimeError_):
            ops.succ(3, 3)
        with pytest.raises(RuntimeError_):
            ops.pred(0, 0)

    def test_conversions(self):
        assert ops.to_integer(3.6) == 4
        assert ops.to_float(3) == 3.0


class TestNameServer:
    def test_register_and_find(self):
        from repro.sim import NameServer

        ns = NameServer()
        ns.register(":top", "instance", "e")
        ns.register(":top:u1", "instance", "f")
        ns.register(":top:u1:clk", "signal", "sig")
        assert ns.lookup(":top:u1:clk") == "sig"
        assert ns.by_suffix("clk") == [":top:u1:clk"]
        assert ns.find(":top:*") == [":top:u1", ":top:u1:clk"]
        assert ns.children(":top") == [":top:u1"]
        assert "u1 [instance]" in ns.tree()

    def test_duplicate_rejected(self):
        from repro.sim import NameServer

        ns = NameServer()
        ns.register(":a", "signal", 1)
        with pytest.raises(KeyError):
            ns.register(":a", "signal", 2)


class TestVhdlIO:
    def test_format_time(self):
        from repro.sim.vhdlio import format_time

        assert format_time(5_000_000) == "5 ns"
        assert format_time(1_500_000) == "1500 ps"
        assert format_time(10**15) == "1 sec"

    def test_text_buffer(self):
        from repro.sim.vhdlio import TextBuffer

        buf = TextBuffer()
        buf.write("count=")
        buf.write(5)
        buf.writeline()
        assert buf.text() == "count=5"
