"""Differential suite: the compiled backend vs the activity kernel.

Every pinned corpus design replays through the three-legged oracle
(event / scan / compiled) and must reach its pinned outcome with zero
divergence; one rich design is additionally compared observable by
observable (trace history, VCD bytes, bridged ``sim_*`` metric
families).  A combinational loop exercises the cyclic-quarantine
fallback: the loop signals must stay calendar-managed while the rest
of the design still compiles, and the quarantine set must come out of
:func:`repro.analysis.levelize` deterministically sorted by signal
index (the ``repro-levels/1`` byte-stability fix).
"""

import os

import pytest

from repro.analysis import build_netlist, levelize
from repro.gen.corpus import iter_corpus
from repro.gen.oracle import (
    _METRIC_FAMILIES,
    _compare,
    _simulate,
    check_source,
)
from repro.sim import CompiledKernel, Kernel
from repro.sim.compiled import _PROGRAM_CACHE
from repro.vhdl.compiler import Compiler
from repro.vhdl.elaborate import Elaborator
from repro.vhdl.library import LibraryManager

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "gen", "corpus")


def compile_lib(source, filename="<test>"):
    library = LibraryManager(root=None)
    result = Compiler(library=library, strict=False).compile(
        source, filename=filename)
    assert result.ok, result.messages
    return library


def _entries():
    entries = iter_corpus(CORPUS_DIR)
    assert entries, "the committed corpus must not be empty"
    return entries


@pytest.mark.parametrize("entry", _entries(), ids=lambda e: e.name)
class TestCorpusReplay:
    """Each pinned design, three backends, pinned outcome, zero
    divergence (``check_source`` compares the legs pairwise)."""

    def test_three_legs_agree(self, entry):
        result = check_source(entry.source, entry.top,
                              until_ns=entry.until_ns,
                              filename=entry.path, compiled=True)
        assert result.outcome == entry.expect, result.detail


class TestObservableIdentity:
    """Field-by-field identity on a rich hierarchy design: VCD bytes,
    signal images, per-process resumes, and the ``sim_*`` metric
    families the oracle pins."""

    @pytest.fixture(scope="class")
    def observations(self):
        entry = {e.name: e for e in _entries()}[
            "full_hierarchy_config_spec"]
        library = compile_lib(entry.source, entry.path)
        until_fs = entry.until_ns * 10**6
        event = _simulate(Kernel, library, entry.top, until_fs)
        compiled = _simulate(CompiledKernel, library, entry.top,
                             until_fs, compile_design=True)
        assert event.get("error") is None
        assert compiled.get("error") is None
        return event, compiled

    def test_no_observable_differs(self, observations):
        event, compiled = observations
        assert _compare(event, compiled, "Kernel",
                        "CompiledKernel") is None

    def test_vcd_bytes_identical(self, observations):
        event, compiled = observations
        assert event["vcd"] == compiled["vcd"]

    def test_metric_families_identical(self, observations):
        event, compiled = observations
        for family in _METRIC_FAMILIES:
            assert event["metrics"].get(family) == \
                compiled["metrics"].get(family), family


COMB_LOOP = """
entity looped is end looped;
architecture rtl of looped is
  signal a : bit := '0';
  signal b : bit := '0';
  signal kick : bit := '0';
  signal tap : bit := '0';
begin
  -- A two-signal zero-delay loop: levelization must quarantine
  -- both.  It is stable at the initial values, so the design still
  -- settles — the quarantine is structural, not behavioral.
  fwd : a <= b;
  bwd : b <= a;
  -- An acyclic cone off the loop input stays compilable.
  probe : tap <= not kick;
  stim : process
  begin
    kick <= '1' after 10 ns;
    wait;
  end process;
end rtl;
"""


class TestQuarantineFallback:
    def test_loop_signals_fall_back_to_the_calendar(self):
        library = compile_lib(COMB_LOOP)
        kernel = CompiledKernel()
        sim = Elaborator(library, kernel=kernel).elaborate("looped")
        kernel.compile_design(sim.records)
        loop = {s.index for s in kernel.signals
                if s.name.split(":")[-1] in ("a", "b")}
        assert loop
        # Quarantined signals never get flat-slot storage: their
        # transactions go through Driver objects and the calendar.
        assert not (loop & kernel.program.slot_indices)

    def test_loop_design_semantics_identical(self):
        result = check_source(COMB_LOOP, "looped", until_ns=100,
                              compiled=True)
        assert result.outcome == "ok", result.detail

    def test_quarantine_sorted_by_signal_index(self):
        library = compile_lib(COMB_LOOP)
        sim = Elaborator(library, kernel=Kernel()).elaborate("looped")
        graphs = [build_netlist(sim.records) for _ in range(2)]
        runs = [levelize(g)[2] for g in graphs]
        for cyclic in runs:
            assert isinstance(cyclic, list)
            assert [s.index for s in cyclic] == \
                sorted(s.index for s in cyclic)
        assert [s.path for s in runs[0]] == [s.path for s in runs[1]]


RING = """
entity miniring is end miniring;
architecture rtl of miniring is
  signal c_0 : integer := 0;
  signal c_1 : integer := 0;
  signal c_2 : integer := 0;
  signal c_3 : integer := 0;
begin
  p_0: process (c_0) begin c_1 <= 1 - c_1 after 1 ns; end process;
  p_1: process begin wait on c_1; c_2 <= 1 - c_2 after 1 ns;
       end process;
  p_2: process begin wait on c_2; c_3 <= 1 - c_3 after 1 ns;
       end process;
  p_3: process begin wait on c_3; c_0 <= 1 - c_0 after 1 ns;
       end process;
end rtl;
"""


class TestFastDispatch:
    """The per-signal dispatch table: with every process compiled
    pure (single-signal permanent wait, no condition) and no metrics
    or tracers attached, ``_cycle`` takes the table-driven lane — and
    must still be state-identical to the event kernel."""

    def _run(self, kernel_cls, library, compiled):
        kernel = kernel_cls()
        sim = Elaborator(library, kernel=kernel).elaborate("miniring")
        if compiled:
            kernel.compile_design(sim.records)
        kernel.initialize()
        kernel.run(until=50 * 10**6)  # 50 ns
        return kernel

    def test_fast_lane_matches_the_event_kernel(self):
        library = compile_lib(RING)
        k_ev = self._run(Kernel, library, compiled=False)
        k_co = self._run(CompiledKernel, library, compiled=True)
        assert k_co._fast_dispatch, \
            "the ring must qualify for table dispatch"
        assert k_co.cycles == k_ev.cycles
        assert k_co.delta_cycles == k_ev.delta_cycles
        assert [s.value for s in k_co.signals] == \
            [s.value for s in k_ev.signals]
        assert [s.events for s in k_co.signals] == \
            [s.events for s in k_ev.signals]
        assert [s.transactions for s in k_co.signals] == \
            [s.transactions for s in k_ev.signals]
        assert [p.resumes for p in k_co.processes] == \
            [p.resumes for p in k_ev.processes]


CACHED = """
entity cached is end cached;
architecture rtl of cached is
  signal tick : bit := '0';
begin
  clock : process
  begin
    tick <= not tick after 5 ns;
    wait on tick;
  end process;
end rtl;
"""


class TestProgramCache:
    def test_second_elaboration_reuses_the_program(self):
        library = compile_lib(CACHED)

        def specialize():
            kernel = CompiledKernel()
            sim = Elaborator(library,
                             kernel=kernel).elaborate("cached")
            kernel.compile_design(sim.records)
            return kernel

        _PROGRAM_CACHE.clear()
        first = specialize()
        assert len(_PROGRAM_CACHE) == 1
        second = specialize()
        # Same fingerprint -> the very same Program object; only the
        # per-elaboration bind (environment capture) re-runs.
        assert second.program is first.program
        assert len(_PROGRAM_CACHE) == 1

    def test_compile_design_rejected_after_initialize(self):
        library = compile_lib(CACHED)
        kernel = CompiledKernel()
        sim = Elaborator(library, kernel=kernel).elaborate("cached")
        kernel.initialize()
        with pytest.raises(Exception):
            kernel.compile_design(sim.records)
