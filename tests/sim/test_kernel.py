"""Tests for the simulation kernel: cycles, deltas, waits, timeouts."""

import pytest

from repro.sim import Kernel, SimulationError


NS = 10**6  # fs per ns


def make_clock(k, sig, half_period):
    rt = k.rt

    def proc():
        while True:
            rt.assign(sig, ((1 - rt.read(sig), half_period),))
            yield rt.wait([sig])

    k.process("clock", proc)


class TestBasicCycles:
    def test_clock_toggles(self):
        k = Kernel()
        clk = k.signal("clk", 0)
        make_clock(k, clk, 5 * NS)
        k.run(until=7 * NS)
        assert clk.value == 1
        k.run(until=12 * NS)
        assert clk.value == 0

    def test_quiescent_simulation_stops(self):
        k = Kernel()
        k.signal("s", 0)
        end = k.run()
        assert end == 0

    def test_event_vs_active(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt
        seen = []

        def driver():
            rt.assign(s, ((0, 1 * NS), (1, 2 * NS)))  # first is no-change
            yield rt.wait([], None, None)

        def watcher():
            while True:
                yield rt.wait([s], None, 10 * NS)
                seen.append((k.now, rt.event(s), rt.active(s)))

        k.process("driver", driver)
        k.process("watcher", watcher)
        k.run(until=3 * NS)
        # The no-change transaction at 1ns makes s active but not an
        # event; the watcher only wakes on events or timeout.
        assert (2 * NS, 1, 1) in seen

    def test_last_value(self):
        k = Kernel()
        s = k.signal("s", 5)
        rt = k.rt

        def driver():
            rt.assign(s, ((9, NS),))
            yield rt.wait([], None, None)

        k.process("d", driver)
        k.run()
        assert s.value == 9
        assert s.last_value == 5


class TestDeltaCycles:
    def test_zero_delay_chain(self):
        """a -> b -> c through two delta cycles at the same time."""
        k = Kernel()
        a = k.signal("a", 0)
        b = k.signal("b", 0)
        c = k.signal("c", 0)
        rt = k.rt

        def pa():
            rt.assign(a, ((1, 0),))
            yield rt.wait([], None, None)

        def pb():
            while True:
                yield rt.wait([a])
                rt.assign(b, ((rt.read(a), 0),))

        def pc():
            while True:
                yield rt.wait([b])
                rt.assign(c, ((rt.read(b), 0),))

        k.process("pa", pa)
        k.process("pb", pb)
        k.process("pc", pc)
        end = k.run()
        assert (a.value, b.value, c.value) == (1, 1, 1)
        assert end == 0  # all in delta cycles at time zero

    def test_unbounded_delta_loop_detected(self):
        k = Kernel(max_deltas=50)
        s = k.signal("s", 0)
        rt = k.rt

        def osc():
            while True:
                rt.assign(s, ((1 - rt.read(s), 0),))
                yield rt.wait([s])

        k.process("osc", osc)
        with pytest.raises(SimulationError) as info:
            k.run()
        assert "delta" in str(info.value)

    def test_delta_does_not_advance_time(self):
        k = Kernel()
        a = k.signal("a", 0)
        b = k.signal("b", 0)
        rt = k.rt

        def pa():
            rt.assign(a, ((1, 0),))
            yield rt.wait([], None, None)

        def pb():
            yield rt.wait([a])
            rt.assign(b, ((1, 0),))
            assert k.now == 0
            yield rt.wait([], None, None)

        k.process("pa", pa)
        k.process("pb", pb)
        assert k.run() == 0


class TestWaits:
    def test_wait_for_timeout(self):
        k = Kernel()
        rt = k.rt
        times = []

        def proc():
            for _ in range(3):
                yield rt.wait(None, None, 7 * NS)
                times.append(k.now)

        k.process("p", proc)
        k.run()
        assert times == [7 * NS, 14 * NS, 21 * NS]

    def test_wait_until_condition(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt
        woke = []

        def driver():
            for v in (1, 2, 3):
                rt.assign(s, ((v, v * NS),))
                yield rt.wait(None, None, v * NS)

        def waiter():
            yield rt.wait([s], lambda: rt.read(s) >= 2, None)
            woke.append(k.now)

        k.process("driver", driver)
        k.process("waiter", waiter)
        k.run()
        # s=1 at 1ns (condition false), s=2 at 3ns -> wakes at 3ns.
        assert woke == [3 * NS]

    def test_wait_forever_never_resumes(self):
        k = Kernel()
        resumed = []
        rt = k.rt

        def p():
            yield rt.wait([], None, None)
            resumed.append(True)

        k.process("p", p)
        k.run(until=100 * NS)
        assert resumed == []

    def test_process_completion(self):
        k = Kernel()
        rt = k.rt
        log = []

        def once():
            log.append("ran")
            if False:
                yield  # make it a generator

        k.process("once", once)
        k.run()
        assert log == ["ran"]
        assert k.processes[0].done


class TestPreemption:
    def test_inertial_assignment_preempts_projection(self):
        """A later inertial assignment deletes projected transactions
        — 'the effect of a VHDL signal assignment is not determinable
        at the time of the execution of the assignment'."""
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def p():
            rt.assign(s, ((1, 10 * NS),))
            rt.assign(s, ((2, 5 * NS),))  # deletes the 10ns transaction
            yield rt.wait([], None, None)

        k.process("p", p)
        k.run()
        assert s.value == 2
        assert k.now == 5 * NS

    def test_transport_appends(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt
        values = []

        def p():
            rt.assign(s, ((1, 5 * NS),), transport=True)
            rt.assign(s, ((2, 10 * NS),), transport=True)
            yield rt.wait([], None, None)

        def w():
            while True:
                yield rt.wait([s])
                values.append((k.now, rt.read(s)))

        k.process("p", p)
        k.process("w", w)
        k.run()
        assert values == [(5 * NS, 1), (10 * NS, 2)]

    def test_transport_deletes_at_or_after(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def p():
            rt.assign(s, ((1, 10 * NS),), transport=True)
            rt.assign(s, ((2, 5 * NS),), transport=True)
            yield rt.wait([], None, None)

        k.process("p", p)
        k.run()
        # The 10ns transaction is at-or-after 5ns: deleted.
        assert s.value == 2


class TestResolution:
    def test_two_drivers_require_resolution(self):
        from repro.sim.runtime import RuntimeError_

        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def d1():
            rt.assign(s, ((1, NS),))
            yield rt.wait([], None, None)

        def d2():
            rt.assign(s, ((0, NS),))
            yield rt.wait([], None, None)

        k.process("d1", d1)
        k.process("d2", d2)
        with pytest.raises(RuntimeError_):
            k.run()

    def test_wired_or_resolution(self):
        k = Kernel()
        s = k.signal("s", 0, resolution=lambda vs: max(vs))
        rt = k.rt

        def d1():
            rt.assign(s, ((1, NS),))
            yield rt.wait([], None, None)

        def d2():
            rt.assign(s, ((0, NS),))
            yield rt.wait([], None, None)

        k.process("d1", d1)
        k.process("d2", d2)
        k.run()
        assert s.value == 1

    def test_driver_per_process(self):
        k = Kernel()
        s = k.signal("s", 0, resolution=lambda vs: sum(vs))
        rt = k.rt

        def drive(v):
            def p():
                rt.assign(s, ((v, NS),))
                rt.assign(s, ((v, 2 * NS),))  # same driver, reassigned
                yield rt.wait([], None, None)

            return p

        k.process("a", drive(3))
        k.process("b", drive(4))
        k.run()
        assert len(s.drivers) == 2
        assert s.value == 7


class TestAssertions:
    def test_failure_severity_stops(self):
        from repro.sim.vhdlio import AssertionFailure

        k = Kernel()
        rt = k.rt

        def p():
            rt.assert_(False, "boom", "failure")
            yield rt.wait([], None, None)

        k.process("p", p)
        with pytest.raises(AssertionFailure):
            k.run()

    def test_error_severity_logs(self):
        k = Kernel()
        rt = k.rt

        def p():
            rt.assert_(False, "not fatal", "error")
            yield rt.wait([], None, None)

        k.process("p", p)
        k.run()
        assert k.logger.errors() == 1
        assert k.logger.records[0][3] == "not fatal"
