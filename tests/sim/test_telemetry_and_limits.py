"""Kernel telemetry and limit semantics (PR 3 satellites).

- delta-cycle overflow raises :class:`SimulationError`;
- ``SeverityLogger.fail_on`` promotion ("error" vs "failure");
- ``format_time`` edge cases (0 fs, mixed units);
- ``run(until=...)`` truncation is counted and reported, not silent;
- kernel metrics: cycle counters, delta histogram, per-process timing.
"""

import pytest

from repro.metrics import MetricsRegistry
from repro.sim import Kernel
from repro.sim.kernel import SimulationError
from repro.sim.vhdlio import (
    AssertionFailure,
    SeverityLogger,
    format_time,
)

NS = 10**6


class TestDeltaOverflow:
    def test_unbounded_zero_delay_loop_raises(self):
        k = Kernel(max_deltas=25)
        a = k.signal("a", 0)
        b = k.signal("b", 1)
        rt = k.rt

        def ping():
            rt.assign(a, ((1, 0),))  # kick off the zero-delay loop
            while True:
                yield rt.wait([b])
                rt.assign(a, ((1 - rt.read(a), 0),))

        def pong():
            while True:
                yield rt.wait([a])
                rt.assign(b, ((1 - rt.read(b), 0),))

        k.process("ping", ping)
        k.process("pong", pong)
        with pytest.raises(SimulationError) as exc:
            k.run()
        assert "delta" in str(exc.value)

    def test_bounded_delta_chain_is_fine(self):
        k = Kernel(max_deltas=100)
        sigs = [k.signal("s%d" % i, 0) for i in range(5)]
        rt = k.rt

        def feeder():
            rt.assign(sigs[0], ((1, 0),))
            yield rt.wait([], None, None)

        def stage(i):
            def proc():
                while True:
                    yield rt.wait([sigs[i]])
                    rt.assign(sigs[i + 1],
                              ((rt.read(sigs[i]), 0),))
            return proc

        k.process("feeder", feeder)
        for i in range(4):
            k.process("st%d" % i, stage(i))
        k.run()
        assert sigs[-1].value == 1
        assert k.delta_cycles > 0


class TestFailOnPromotion:
    def test_default_only_failure_raises(self):
        logger = SeverityLogger()
        logger.report("error", "bad")  # logged, does not raise
        with pytest.raises(AssertionFailure):
            logger.report("failure", "fatal")
        assert logger.counts["error"] == 1
        assert logger.counts["failure"] == 1

    def test_fail_on_error_promotes_errors(self):
        logger = SeverityLogger(fail_on="error")
        logger.report("warning", "meh")
        with pytest.raises(AssertionFailure):
            logger.report("error", "bad")

    def test_fail_on_note_promotes_everything(self):
        logger = SeverityLogger(fail_on="note")
        with pytest.raises(AssertionFailure):
            logger.report("note", "hi")

    def test_fail_false_never_raises(self):
        logger = SeverityLogger(fail_on="note")
        logger.report("failure", "internal", fail=False)
        assert logger.counts["failure"] == 1

    def test_unknown_severity_coerces_to_error(self):
        logger = SeverityLogger()
        logger.report("bogus", "x")
        assert logger.counts["error"] == 1


class TestFormatTime:
    @pytest.mark.parametrize("fs,expect", [
        (0, "0 fs"),
        (1, "1 fs"),
        (999, "999 fs"),
        (1000, "1 ps"),
        (10**6, "1 ns"),
        (1500 * 10**3, "1500 ps"),      # 1.5 ns: largest even unit
        (10**9, "1 us"),
        (10**12, "1 ms"),
        (10**15, "1 sec"),
        (60 * 10**15, "1 min"),
        (3600 * 10**15, "1 hr"),
        (90 * 10**15, "90 sec"),        # 1.5 min stays in seconds
    ])
    def test_largest_even_unit(self, fs, expect):
        assert format_time(fs) == expect


class TestTruncation:
    def _kernel_with_pending(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, 10 * NS), (2, 1000 * NS)))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        return k, s

    def test_pending_transactions_counted_and_noted(self):
        k, s = self._kernel_with_pending()
        k.run(until=50 * NS)
        assert k.now == 50 * NS
        assert s.value == 1
        assert k.truncated_transactions >= 1
        notes = [r for r in k.logger.records if r[0] == "note"]
        assert notes, k.logger.records
        assert "truncated" in notes[0][3]
        assert notes[0][2] == "<kernel>"

    def test_truncation_never_raises_even_with_fail_on_note(self):
        k = Kernel(logger=SeverityLogger(fail_on="note"))
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, 100 * NS),))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run(until=10 * NS)  # must not raise AssertionFailure
        assert k.truncated_transactions == 1

    def test_quiescent_run_has_no_truncation(self):
        k, _ = self._kernel_with_pending()
        k.run()  # to quiescence: nothing abandoned
        assert k.truncated_transactions == 0
        assert not [r for r in k.logger.records if r[0] == "note"]

    def test_truncation_gauge_published(self):
        reg = MetricsRegistry()
        k = Kernel(metrics=reg)
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, 100 * NS),))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run(until=10 * NS)
        snap = reg.snapshot()["metrics"]
        assert snap["sim_truncated_transactions"]["samples"][0][
            "value"] == 1


class TestKernelMetrics:
    def _toggler(self, metrics=None):
        k = Kernel(metrics=metrics)
        clk = k.signal("clk", 0)
        rt = k.rt

        def clock():
            while True:
                rt.assign(clk, ((1 - rt.read(clk), 10 * NS),))
                yield rt.wait([clk])

        k.process("clock", clock, sensitivity=[clk])
        return k, clk

    def test_cycle_and_delta_counters(self):
        reg = MetricsRegistry()
        k, _ = self._toggler(metrics=reg)
        k.run(until=100 * NS)
        snap = reg.snapshot()["metrics"]
        assert snap["sim_cycles_total"]["samples"][0][
            "value"] == k.cycles > 0
        hist = snap["sim_deltas_per_timestep"]["samples"][0]
        assert hist["count"] > 0

    def test_exec_seconds_measured_only_when_enabled(self):
        k_off, _ = self._toggler()  # default: null registry
        k_off.run(until=100 * NS)
        assert all(p.exec_seconds == 0.0 for p in k_off.processes)
        assert all(p.resumes > 0 for p in k_off.processes)

        k_on, _ = self._toggler(metrics=MetricsRegistry())
        k_on.run(until=100 * NS)
        assert any(p.exec_seconds > 0.0 for p in k_on.processes)

    def test_sensitivity_stored_on_process(self):
        k, clk = self._toggler()
        assert k.processes[0].sensitivity == [clk]
