"""Tests for waveform tracing and VCD export."""

from repro.sim import Kernel, VArray
from repro.sim.tracing import Tracer, format_fs

NS = 10**6


def staircase_kernel():
    k = Kernel()
    s = k.signal("s", 0)
    rt = k.rt

    def proc():
        for v in (1, 2, 3):
            rt.assign(s, ((v, 10 * NS),))
            yield rt.wait(None, None, 10 * NS)

    k.process("p", proc)
    return k, s


class TestTracer:
    def test_records_changes(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        assert tracer.changes(s) == [
            (0, 0), (10 * NS, 1), (20 * NS, 2), (30 * NS, 3)]

    def test_value_at(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        assert tracer.value_at(s, 0) == 0
        assert tracer.value_at(s, 15 * NS) == 1
        assert tracer.value_at(s, 30 * NS) == 3

    def test_no_change_no_record(self):
        k = Kernel()
        s = k.signal("s", 5)
        rt = k.rt

        def proc():
            rt.assign(s, ((5, NS),))  # same value: active, no event
            yield rt.wait([], None, None)

        k.process("p", proc)
        tracer = Tracer(k, [s])
        k.run()
        assert tracer.changes(s) == [(0, 5)]

    def test_ascii_wave(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        text = tracer.ascii_wave(30 * NS, 10 * NS, image=str)
        assert "time(fs)" in text
        rows = text.splitlines()
        assert rows[1].startswith("s")
        assert rows[1].split()[-4:] == ["0", "1", "2", "3"]

    def test_default_traces_all_signals(self):
        k, s = staircase_kernel()
        k.signal("other", 9)
        tracer = Tracer(k)
        assert len(tracer.signals) == 2


class TestVCD:
    def test_vcd_structure(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        vcd = tracer.vcd()
        assert "$timescale 1 fs $end" in vcd
        assert "$var wire 32 ! s $end" in vcd
        assert "#10000000" in vcd
        assert vcd.count("b1 !") == 1  # value 1 once

    def test_vcd_array_signal(self):
        k = Kernel()
        v = VArray(3, "downto", 0, [0, 0, 0, 0])
        s = k.signal("bus", v)
        rt = k.rt

        def proc():
            rt.assign(s, ((VArray(3, "downto", 0, [1, 0, 1, 0]), NS),))
            yield rt.wait([], None, None)

        k.process("p", proc)
        tracer = Tracer(k, [s])
        k.run()
        vcd = tracer.vcd()
        assert "$var wire 4" in vcd
        assert "b1010" in vcd

    def test_code_generation_unique(self):
        from repro.sim.tracing import _vcd_code

        codes = {_vcd_code(i) for i in range(500)}
        assert len(codes) == 500

    def test_extended_identifier_sanitized(self):
        """Regression: VHDL extended identifiers (``\\bus a\\``) and
        non-ASCII names used to leak spaces/backslashes/raw bytes into
        the ``$var`` reference, producing illegal VCD."""
        k = Kernel()
        s = k.signal(":top:\\bus a\\", 0)
        t = k.signal(":top:tempµ", 1)  # micro sign, non-ASCII
        rt = k.rt

        def proc():
            rt.assign(s, ((1, NS),))
            yield rt.wait([], None, None)

        k.process("p", proc)
        tracer = Tracer(k, [s, t])
        k.run()
        vcd = tracer.vcd()
        var_lines = [l for l in vcd.splitlines()
                     if l.startswith("$var")]
        assert len(var_lines) == 2
        for line in var_lines:
            # "$var wire <w> <code> <ref> $end" — exactly 6 fields:
            # a space inside the reference would add more.
            assert len(line.split(" ")) == 6
            assert "\\" not in line
            assert all(33 <= ord(c) <= 126 or c == " " for c in line)
        assert "$var wire 32 ! top.bus_a $end" in vcd
        assert "$var wire 32 \" top.tempxB5 $end" in vcd

    def test_sanitizer_rules(self):
        from repro.sim.tracing import _vcd_ref

        assert _vcd_ref("s") == "s"
        assert _vcd_ref(":a:b") == "a.b"
        assert _vcd_ref("\\x y\\") == "x_y"
        assert _vcd_ref("") == "unnamed"
        assert _vcd_ref("café") == "cafxE9"


class TestFormatting:
    def test_format_fs(self):
        assert format_fs(5 * NS) == "5 ns"
        assert format_fs(0) == "0 fs"
        assert format_fs(123) == "123 fs"
