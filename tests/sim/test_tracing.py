"""Tests for waveform tracing and VCD export."""

from repro.sim import Kernel, VArray
from repro.sim.tracing import Tracer, format_fs

NS = 10**6


def staircase_kernel():
    k = Kernel()
    s = k.signal("s", 0)
    rt = k.rt

    def proc():
        for v in (1, 2, 3):
            rt.assign(s, ((v, 10 * NS),))
            yield rt.wait(None, None, 10 * NS)

    k.process("p", proc)
    return k, s


class TestTracer:
    def test_records_changes(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        assert tracer.changes(s) == [
            (0, 0), (10 * NS, 1), (20 * NS, 2), (30 * NS, 3)]

    def test_value_at(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        assert tracer.value_at(s, 0) == 0
        assert tracer.value_at(s, 15 * NS) == 1
        assert tracer.value_at(s, 30 * NS) == 3

    def test_no_change_no_record(self):
        k = Kernel()
        s = k.signal("s", 5)
        rt = k.rt

        def proc():
            rt.assign(s, ((5, NS),))  # same value: active, no event
            yield rt.wait([], None, None)

        k.process("p", proc)
        tracer = Tracer(k, [s])
        k.run()
        assert tracer.changes(s) == [(0, 5)]

    def test_ascii_wave(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        text = tracer.ascii_wave(30 * NS, 10 * NS, image=str)
        assert "time(fs)" in text
        rows = text.splitlines()
        assert rows[1].startswith("s")
        assert rows[1].split()[-4:] == ["0", "1", "2", "3"]

    def test_default_traces_all_signals(self):
        k, s = staircase_kernel()
        k.signal("other", 9)
        tracer = Tracer(k)
        assert len(tracer.signals) == 2


class TestVCD:
    def test_vcd_structure(self):
        k, s = staircase_kernel()
        tracer = Tracer(k, [s])
        k.run()
        vcd = tracer.vcd()
        assert "$timescale 1 fs $end" in vcd
        assert "$var wire 32 ! s $end" in vcd
        assert "#10000000" in vcd
        assert vcd.count("b1 !") == 1  # value 1 once

    def test_vcd_array_signal(self):
        k = Kernel()
        v = VArray(3, "downto", 0, [0, 0, 0, 0])
        s = k.signal("bus", v)
        rt = k.rt

        def proc():
            rt.assign(s, ((VArray(3, "downto", 0, [1, 0, 1, 0]), NS),))
            yield rt.wait([], None, None)

        k.process("p", proc)
        tracer = Tracer(k, [s])
        k.run()
        vcd = tracer.vcd()
        assert "$var wire 4" in vcd
        assert "b1010" in vcd

    def test_code_generation_unique(self):
        from repro.sim.tracing import _vcd_code

        codes = {_vcd_code(i) for i in range(500)}
        assert len(codes) == 500


class TestFormatting:
    def test_format_fs(self):
        assert format_fs(5 * NS) == "5 ns"
        assert format_fs(0) == "0 fs"
        assert format_fs(123) == "123 fs"
