"""Property-based tests of driver/waveform semantics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.signals import Driver, Signal


waveform_elems = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 100)),
    min_size=1, max_size=5,
).map(lambda elems: sorted(elems, key=lambda e: e[1]))

assignments = st.lists(
    st.tuples(waveform_elems, st.booleans(), st.integers(0, 50)),
    min_size=1, max_size=6,
)


class TestDriverProperties:
    @given(assignments)
    def test_waveform_always_time_sorted(self, batches):
        """Whatever sequence of inertial/transport assignments is
        applied, the projected waveform stays sorted by time."""
        sig = Signal("s", 0)
        driver = Driver(None, sig, 0)
        now = 0
        for elems, transport, dt in batches:
            now += dt
            driver.advance(now)
            driver.schedule(now, elems, transport)
            times = [t.time for t in driver.waveform]
            assert times == sorted(times)
            assert all(t >= now for t in times)

    @given(waveform_elems, waveform_elems)
    def test_inertial_preemption_clears_projection(self, first, second):
        """An inertial assignment deletes the whole old projection."""
        sig = Signal("s", 0)
        driver = Driver(None, sig, 0)
        driver.schedule(0, first, transport=False)
        driver.schedule(0, second, transport=False)
        assert len(driver.waveform) == len(second)
        assert [t.value for t in driver.waveform] == [
            v for v, _ in second]

    @given(waveform_elems, waveform_elems)
    def test_transport_keeps_earlier_transactions(self, first, second):
        """Transport deletes only at-or-after the first new time."""
        sig = Signal("s", 0)
        driver = Driver(None, sig, 0)
        driver.schedule(0, first, transport=True)
        cutoff = second[0][1]
        kept = [t for t in driver.waveform if t.time < cutoff]
        driver.schedule(0, second, transport=True)
        assert driver.waveform[: len(kept)] == kept

    @given(waveform_elems)
    def test_advance_applies_due_transactions_in_order(self, elems):
        sig = Signal("s", 0)
        driver = Driver(None, sig, 0)
        driver.schedule(0, elems, transport=True)
        horizon = max(t for _, t in elems)
        driver.advance(horizon)
        # The driver value is the chronologically last transaction.
        last_time = max(t for _, t in elems)
        final = [v for v, t in elems if t == last_time][-1]
        assert driver.value == final
        assert driver.waveform == []


class TestSignalProperties:
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=8))
    def test_event_iff_value_changed(self, values):
        sig = Signal("s", 0)

        class P:
            pass

        driver = sig.driver_for(P())
        now = 0
        current = 0
        for step, v in enumerate(values, start=1):
            now += 10
            driver.schedule(now - 10, ((v, 10),), False)
            changed = sig.update(now, step)
            assert changed == (v != current)
            assert sig.is_active(step)
            if changed:
                assert sig.last_event_time == now
                current = v

    @given(st.lists(st.integers(0, 5), min_size=2, max_size=6,
                    unique=True))
    def test_resolution_sees_all_driver_values(self, values):
        seen = []

        def res(vs):
            seen.append(sorted(vs))
            return max(vs)

        sig = Signal("s", 0, resolution=res)
        for i, v in enumerate(values):
            class P:
                pass

            d = sig.driver_for(P())
            d.schedule(0, ((v, 5),), False)
        sig.update(5, 1)
        assert seen[-1] == sorted(values)
        assert sig.value == max(values)
