"""The activity-driven scheduler: event calendar, lazy deletion,
pending-update set, and the signal→waiting-process fanout index.

Three concerns:

1. **Preemption × calendar interplay** — inertial/transport preemption
   leaves stale heap entries behind; lazy deletion must discard them
   without phantom wakeups, phantom timesteps, or changed
   ``truncated_transactions`` accounting under ``run(until=...)``.
2. **Differential equivalence** — any workload must behave identically
   on the calendar :class:`Kernel` and the full-scan
   :class:`ScanKernel` reference: same cycle/delta counts, same VCD
   bytes, same ``sim_*`` metric values.
3. **Telemetry** — the new ``sim_calendar_*`` gauges/counters and the
   regression fix for the spurious ``sim_deltas_per_timestep`` zero
   observation on quiescent runs.
"""

import pytest

from repro.metrics import MetricsRegistry
from repro.metrics.bridge import (
    bridge_kernel,
    format_calendar_stats,
)
from repro.sim import Kernel, ScanKernel
from repro.sim.tracing import Tracer

NS = 10**6


class TestLazyDeletion:
    """Stale calendar entries must never surface as activity."""

    def _watched(self, kernel_cls=Kernel):
        k = kernel_cls()
        s = k.signal("s", 0)
        rt = k.rt
        wakes = []

        def watcher():
            while True:
                yield rt.wait([s])
                wakes.append((k.now, rt.read(s)))

        k.process("watcher", watcher)
        return k, s, rt, wakes

    def test_inertial_preemption_no_phantom_timestep(self):
        k, s, rt, wakes = self._watched()

        def driver():
            rt.assign(s, ((1, 10 * NS),))
            rt.assign(s, ((2, 5 * NS),))  # deletes the 10 ns txn
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run(until=50 * NS)
        assert wakes == [(5 * NS, 2)]
        # Exactly one cycle: the stale 10 ns entry must not make one.
        assert k.cycles == 1
        assert k.stale_pops >= 1

    def test_transport_preemption_no_phantom_timestep(self):
        k, s, rt, wakes = self._watched()

        def driver():
            rt.assign(s, ((1, 10 * NS),), transport=True)
            rt.assign(s, ((2, 5 * NS),), transport=True)
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run(until=50 * NS)
        assert wakes == [(5 * NS, 2)]
        assert k.cycles == 1
        assert k.stale_pops >= 1

    def test_same_time_duplicate_entries_collapse(self):
        k, s, rt, wakes = self._watched()

        def driver():
            rt.assign(s, ((1, 5 * NS),))
            rt.assign(s, ((2, 5 * NS),))  # same time, new value
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run()
        assert wakes == [(5 * NS, 2)]
        assert k.cycles == 1
        assert s.events == 1
        assert s.transactions == 1  # one fired transaction

    def test_stale_timeout_after_signal_wake(self):
        """A wait's timeout entry dies when an event resumes the
        process first — no wakeup, no timestep at the old deadline."""
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt
        wakes = []

        def driver():
            rt.assign(s, ((1, 3 * NS),))
            yield rt.wait([], None, None)

        def waiter():
            yield rt.wait([s], None, 10 * NS)
            wakes.append(k.now)
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.process("waiter", waiter)
        k.run(until=50 * NS)
        assert wakes == [3 * NS]
        assert k.cycles == 1  # nothing happened at 10 ns
        assert k.now == 3 * NS  # quiescent before `until`
        assert k.stale_pops >= 1  # the dead timeout entry

    def test_rearmed_zero_timeout_fires_every_delta(self):
        """``wait for 0`` re-arms a same-time timeout entry each
        cycle; duplicates of dead entries must not double-fire."""
        k = Kernel()
        rt = k.rt
        ticks = []

        def poller():
            for _ in range(3):
                yield rt.wait(None, None, 0)
                ticks.append(k.now)

        k.process("poller", poller)
        k.run()
        assert ticks == [0, 0, 0]
        assert k.cycles == 3
        assert k.delta_cycles == 3

    def test_repeated_timeouts_advance_like_scan(self):
        k = Kernel()
        rt = k.rt
        times = []

        def proc():
            for _ in range(4):
                yield rt.wait(None, None, 7 * NS)
                times.append(k.now)

        k.process("p", proc)
        k.run()
        assert times == [7 * NS, 14 * NS, 21 * NS, 28 * NS]
        assert k.cycles == 4


class TestTruncationWithCalendar:
    """``run(until=...)`` accounting must ignore stale entries."""

    def test_preempted_transaction_not_counted(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, 100 * NS),))
            rt.assign(s, ((2, 200 * NS),))  # inertial: kills 100 ns
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run(until=50 * NS)
        assert k.now == 50 * NS
        assert k.cycles == 0
        # Only the *live* 200 ns transaction is abandoned; the stale
        # 100 ns heap entry adds nothing.
        assert k.truncated_transactions == 1
        notes = [r for r in k.logger.records if r[0] == "note"]
        assert len(notes) == 1 and "truncated" in notes[0][3]

    def test_stale_entries_beyond_until_do_not_truncate(self):
        """When preemption already killed everything past ``until``,
        the run quiesces — no truncation note, no phantom advance."""
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, 5 * NS),), transport=True)
            rt.assign(s, ((7, 100 * NS),), transport=True)
            rt.assign(s, ((2, 6 * NS),), transport=True)  # kills 100 ns
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run(until=50 * NS)
        assert k.now == 6 * NS  # quiescent, not advanced to 50 ns
        assert s.value == 2
        assert k.truncated_transactions == 0
        assert not [r for r in k.logger.records if r[0] == "note"]
        assert k.stale_pops >= 1

    def test_truncation_counts_match_scan_kernel(self):
        def build(kernel_cls):
            k = kernel_cls()
            s = k.signal("s", 0)
            rt = k.rt

            def driver():
                rt.assign(s, ((1, 10 * NS), (2, 80 * NS)),
                          transport=True)
                yield rt.wait(None, None, 120 * NS)

            k.process("driver", driver)
            k.run(until=40 * NS)
            return k

        cal, scan = build(Kernel), build(ScanKernel)
        assert cal.truncated_transactions == \
            scan.truncated_transactions == 2  # 80 ns txn + 120 ns wait
        assert cal.now == scan.now == 40 * NS
        assert cal.cycles == scan.cycles


class TestFanoutIndex:
    def test_waiters_registered_and_released(self):
        k = Kernel()
        a = k.signal("a", 0)
        b = k.signal("b", 0)
        rt = k.rt

        def waiter():
            yield rt.wait([a, b])
            yield rt.wait([a])
            yield rt.wait([], None, None)

        proc = k.process("waiter", waiter)

        def driver():
            rt.assign(a, ((1, NS),))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.initialize()
        assert proc in a.waiters and proc in b.waiters
        k.run()
        # Resumed once by a's event; re-suspended on [a] only.
        assert proc in a.waiters
        assert b.waiters == set()

    def test_duplicate_signals_in_wait_resume_once(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def waiter():
            while True:
                yield rt.wait([s, s])

        proc = k.process("waiter", waiter)

        def driver():
            rt.assign(s, ((1, NS),))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run()
        assert proc.resumes == 2  # initialize + one event

    def test_fanout_visits_track_events_only(self):
        k = Kernel()
        s = k.signal("s", 0)
        quiet = k.signal("quiet", 0)
        rt = k.rt

        def watcher():
            while True:
                yield rt.wait([s])

        def sleeper():
            yield rt.wait([quiet])

        k.process("watcher", watcher)
        k.process("sleeper", sleeper)

        def driver():
            for v in (1, 2, 3):
                rt.assign(s, ((v, NS),))
                yield rt.wait(None, None, NS)

        k.process("driver", driver)
        k.run()
        # Three events on s, one waiter each; `quiet` never fires so
        # its waiter is never visited.
        assert k.fanout_visits == 3

    def test_condition_false_keeps_process_waiting(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt
        woke = []

        def waiter():
            yield rt.wait([s], lambda: rt.read(s) >= 3, None)
            woke.append(k.now)

        proc = k.process("waiter", waiter)

        def driver():
            for v in (1, 2):
                rt.assign(s, ((v, NS),))
                yield rt.wait(None, None, NS)

        k.process("driver", driver)
        k.run()
        assert woke == []
        assert proc.resumes == 1  # initialize only
        assert proc in s.waiters  # still indexed
        assert k.fanout_visits == 2  # visited, condition vetoed


def _mixed_workload(kernel_cls, metrics=None):
    """A deterministic workload exercising every scheduler feature:
    clocked processes, sensitivity fanout, zero-delay deltas,
    inertial + transport preemption, resolved multi-driver buses,
    timeouts, and conditions."""
    k = kernel_cls(metrics=metrics)
    rt = k.rt
    clk = k.signal("clk", 0)
    d0 = k.signal("d0", 0)
    d1 = k.signal("d1", 0)
    pulse = k.signal("pulse", 0)
    line = k.signal("line", 0)
    bus = k.signal("bus", 0, resolution=lambda vs: max(vs))
    poll = k.signal("poll", 0)

    def clock():
        while True:
            rt.assign(clk, ((1 - rt.read(clk), 5 * NS),))
            yield rt.wait([clk])

    def stage():  # clocked pipeline stage + zero-delay forward
        while True:
            yield rt.wait([clk])
            if rt.event(clk) and rt.read(clk) == 1:
                rt.assign(d0, (((rt.read(d0) + 1) % 7, 0),))

    def forward():  # delta-cycle chain d0 -> d1
        while True:
            yield rt.wait([d0])
            rt.assign(d1, ((rt.read(d0), 0),))

    def pulser():  # inertial preemption every period
        while True:
            rt.assign(pulse, ((1, 9 * NS),))
            rt.assign(pulse, ((0, 4 * NS),))  # kills the 9 ns txn
            yield rt.wait(None, None, 13 * NS)

    def liner():  # transport delay line with mid-flight preemption
        while True:
            rt.assign(line, ((1, 6 * NS), (0, 20 * NS)),
                      transport=True)
            rt.assign(line, ((2, 11 * NS),), transport=True)
            yield rt.wait(None, None, 17 * NS)

    def busdrv(v, period):
        def proc():
            while True:
                rt.assign(bus, ((v, period),))
                rt.assign(bus, ((0, period + 3 * NS),))
                yield rt.wait(None, None, 2 * period)
        return proc

    def conditional():  # wakes only when d1 crosses the threshold
        while True:
            yield rt.wait([d1], lambda: rt.read(d1) >= 3, 40 * NS)
            rt.assign(poll, ((1 - rt.read(poll), 1 * NS),))

    k.process("clock", clock, sensitivity=[clk])
    k.process("stage", stage, sensitivity=[clk])
    k.process("forward", forward, sensitivity=[d0])
    k.process("pulser", pulser)
    k.process("liner", liner)
    k.process("bus_a", busdrv(2, 8 * NS))
    k.process("bus_b", busdrv(3, 10 * NS))
    k.process("conditional", conditional)
    return k


class TestDifferentialEquivalence:
    """Calendar kernel vs full-scan reference: identical semantics."""

    def test_counts_values_and_vcd_identical(self):
        results = {}
        for cls in (Kernel, ScanKernel):
            k = _mixed_workload(cls)
            tracer = Tracer(k)
            end = k.run(until=200 * NS)
            results[cls] = (k, tracer, end)
        cal, cal_tr, cal_end = results[Kernel]
        scan, scan_tr, scan_end = results[ScanKernel]
        assert cal_end == scan_end
        assert cal.cycles == scan.cycles > 50
        assert cal.delta_cycles == scan.delta_cycles > 0
        assert [s.value for s in cal.signals] == \
            [s.value for s in scan.signals]
        assert [s.events for s in cal.signals] == \
            [s.events for s in scan.signals]
        assert [s.transactions for s in cal.signals] == \
            [s.transactions for s in scan.signals]
        assert [p.resumes for p in cal.processes] == \
            [p.resumes for p in scan.processes]
        assert cal_tr.vcd() == scan_tr.vcd()

    def test_reentrant_runs_stay_identical(self):
        cal = _mixed_workload(Kernel)
        scan = _mixed_workload(ScanKernel)
        for until in (30 * NS, 90 * NS, 150 * NS):
            cal.run(until=until)
            scan.run(until=until)
            assert cal.now == scan.now
            assert cal.cycles == scan.cycles
            assert [s.value for s in cal.signals] == \
                [s.value for s in scan.signals]
        assert cal.truncated_transactions == scan.truncated_transactions

    def test_sim_metric_values_identical(self):
        def snapshot(cls):
            registry = MetricsRegistry()
            k = _mixed_workload(cls, metrics=registry)
            k.run(until=120 * NS)
            bridge_kernel(registry, k)
            return registry.snapshot()["metrics"]

        cal, scan = snapshot(Kernel), snapshot(ScanKernel)
        same = [
            "sim_cycles_total",
            "sim_delta_cycles_total",
            "sim_deltas_per_timestep",
            "sim_process_resumes_total",
            "sim_process_resumes_by_process_total",
            "sim_signal_events_total",
            "sim_signal_transactions_total",
            "sim_now_fs",
            "sim_signals",
            "sim_processes",
        ]
        for family in same:
            assert cal[family]["samples"] == scan[family]["samples"], \
                family

    def test_manual_cycle_stepping_identical(self):
        cal = _mixed_workload(Kernel)
        scan = _mixed_workload(ScanKernel)
        for _ in range(25):
            assert cal.cycle() == scan.cycle()
            assert cal.now == scan.now
            assert cal.step == scan.step


class TestDeltaHistogramObservation:
    """Regression: a quiescent ``run()`` (zero executed cycles) must
    not record a spurious zero in ``sim_deltas_per_timestep``."""

    def _hist(self, registry):
        snap = registry.snapshot()["metrics"]
        return snap["sim_deltas_per_timestep"]["samples"][0]

    def test_quiescent_run_records_nothing(self):
        registry = MetricsRegistry()
        k = Kernel(metrics=registry)
        k.signal("s", 0)
        k.run()
        assert self._hist(registry)["count"] == 0

    def test_quiescent_scan_kernel_records_nothing(self):
        registry = MetricsRegistry()
        k = ScanKernel(metrics=registry)
        k.signal("s", 0)
        k.run()
        assert self._hist(registry)["count"] == 0

    def test_second_quiescent_run_adds_nothing(self):
        registry = MetricsRegistry()
        k = Kernel(metrics=registry)
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, NS),))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run()
        count = self._hist(registry)["count"]
        assert count > 0
        k.run()  # already quiescent: no new observation
        assert self._hist(registry)["count"] == count


class TestCalendarTelemetry:
    def test_calendar_metrics_published(self):
        registry = MetricsRegistry()
        k = _mixed_workload(Kernel, metrics=registry)
        k.run(until=100 * NS)
        bridge_kernel(registry, k)
        snap = registry.snapshot()["metrics"]
        assert snap["sim_calendar_heap_peak"]["samples"][0][
            "value"] == k.calendar_peak > 0
        assert snap["sim_calendar_stale_pops_total"]["samples"][0][
            "value"] == k.stale_pops > 0
        assert snap["sim_calendar_fanout_visits_total"]["samples"][0][
            "value"] == k.fanout_visits > 0
        assert snap["sim_calendar_heap_size"]["samples"][0][
            "value"] == len(k._calendar)

    def test_format_calendar_stats(self):
        k = _mixed_workload(Kernel)
        k.run(until=60 * NS)
        line = format_calendar_stats(k)
        assert "calendar peak" in line
        assert "fanout visit" in line
        assert "stale pop" in line

    def test_scan_kernel_keeps_no_calendar(self):
        k = _mixed_workload(ScanKernel)
        k.run(until=60 * NS)
        assert k._calendar == []
        assert k.calendar_peak == 0
        # Lazy-deletion telemetry only ticks on the calendar kernel.
        assert k.stale_pops == 0

    def test_heap_drains_on_quiescence(self):
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            rt.assign(s, ((1, NS), (2, 2 * NS), (3, 3 * NS)))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run()
        assert k.calendar_peak >= 3
        assert k._calendar == []  # fully drained


class TestCalendarStress:
    def test_many_preemptions_one_survivor(self):
        """N rounds of inertial preemption leave N-1 stale entries;
        exactly one cycle may result."""
        k = Kernel()
        s = k.signal("s", 0)
        rt = k.rt

        def driver():
            for i in range(50):
                rt.assign(s, ((i + 1, (50 - i) * NS),))
            yield rt.wait([], None, None)

        k.process("driver", driver)
        k.run()
        assert s.value == 50
        assert k.now == 1 * NS  # the last (shortest-delay) assignment
        assert k.cycles == 1
        assert k.stale_pops == 49

    def test_interleaved_timeouts_and_events_match_scan(self):
        def build(cls):
            k = cls()
            sigs = [k.signal("s%d" % i, 0) for i in range(6)]
            rt = k.rt
            log = []

            def hopper(i):
                def proc():
                    while True:
                        yield rt.wait([sigs[i]], None,
                                      (3 + 2 * i) * NS)
                        log.append((k.now, i, rt.read(sigs[i])))
                        rt.assign(sigs[(i + 1) % 6],
                                  ((1 - rt.read(sigs[(i + 1) % 6]),
                                    2 * NS),))
                return proc

            for i in range(6):
                k.process("h%d" % i, hopper(i))
            k.run(until=100 * NS)
            return k, log

        cal_k, cal_log = build(Kernel)
        scan_k, scan_log = build(ScanKernel)
        assert cal_log == scan_log
        assert cal_k.cycles == scan_k.cycles
        assert cal_k.delta_cycles == scan_k.delta_cycles
