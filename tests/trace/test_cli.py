"""The ``repro trace`` subcommand over real files."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def collect():
    lines = []

    def out(text=""):
        lines.append(str(text))

    out.lines = lines
    return out


@pytest.fixture()
def trace_file(tmp_path):
    events = [
        {"name": "request", "ph": "X", "ts": 0.0, "dur": 90.0,
         "pid": 1, "tid": 1, "trace_id": "t" * 32, "span_id": "r1"},
        {"name": "build", "ph": "X", "ts": 5.0, "dur": 70.0,
         "pid": 2, "tid": 1, "trace_id": "t" * 32, "span_id": "b1",
         "parent_id": "r1"},
    ]
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"traceEvents": events}))
    return str(path)


class TestTraceCommand:
    def test_tree_view(self, trace_file, collect):
        assert main(["trace", trace_file], out=collect) == 0
        text = "\n".join(collect.lines)
        assert "2 span(s) in 1 trace(s): 1 root(s)" in text
        assert any(line.startswith("request") for line in
                   collect.lines)
        assert any(line.startswith("  build") for line in
                   collect.lines)

    def test_summary_view_is_json(self, trace_file, collect):
        assert main(["trace", trace_file, "--view", "summary"],
                    out=collect) == 0
        report = json.loads("\n".join(collect.lines))
        assert report["spans"] == 2
        assert report["unresolved_parents"] == 0
        assert report["pids"] == [1, 2]

    def test_slowest_and_rollup_views(self, trace_file, collect):
        assert main(["trace", trace_file, "--view", "slowest",
                     "--limit", "1"], out=collect) == 0
        assert "request" in collect.lines[-1]
        del collect.lines[:]
        assert main(["trace", trace_file, "--view", "rollup"],
                    out=collect) == 0
        assert any("request > build" in line for line in
                   collect.lines)

    def test_merge_out_writes_chrome_trace(self, trace_file,
                                           tmp_path, collect):
        merged = str(tmp_path / "out" / "merged.json")
        assert main(["trace", trace_file, trace_file,
                     "--merge-out", merged], out=collect) == 0
        doc = json.load(open(merged))
        assert len(doc["traceEvents"]) == 4
        assert doc["displayTimeUnit"] == "ms"

    def test_trace_id_filter(self, trace_file, collect):
        assert main(["trace", trace_file, "--trace-id", "absent",
                     "--view", "summary"], out=collect) == 0
        report = json.loads("\n".join(collect.lines))
        assert report["spans"] == 0

    def test_missing_file_is_usage_error(self, tmp_path, collect):
        path = str(tmp_path / "nope.json")
        assert main(["trace", path], out=collect) == 2
        assert collect.lines[0].startswith("trace: ")

    def test_non_trace_json_is_usage_error(self, tmp_path, collect):
        path = tmp_path / "scalar.json"
        path.write_text("3.14")
        assert main(["trace", str(path)], out=collect) == 2
