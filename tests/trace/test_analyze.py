"""Offline span analysis: loading, merging, trees, rollups."""

import json

import pytest

from repro.trace import analyze


def span(name, span_id, parent_id=None, ts=0.0, dur=1.0, pid=1,
         trace_id="t1", **args):
    event = {"name": name, "cat": "test", "ph": "X", "ts": ts,
             "dur": dur, "pid": pid, "tid": 1, "trace_id": trace_id,
             "span_id": span_id}
    if parent_id is not None:
        event["parent_id"] = parent_id
    if args:
        event["args"] = dict(args)
    return event


@pytest.fixture
def forest():
    """root > (build > compile, sim) plus an orphaned stranger."""
    return [
        span("root", "r1", ts=0.0, dur=100.0),
        span("build", "b1", parent_id="r1", ts=1.0, dur=40.0),
        span("compile", "c1", parent_id="b1", ts=2.0, dur=30.0,
             pid=2),
        span("sim", "s1", parent_id="r1", ts=50.0, dur=45.0),
        span("stranger", "x1", parent_id="missing", ts=60.0,
             dur=5.0, trace_id="t2"),
    ]


class TestLoadSpans:
    def test_chrome_trace_object(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(
            {"traceEvents": [{"name": "a"}, "junk", {"name": "b"}]}))
        events = analyze.load_spans(str(path))
        assert [e["name"] for e in events] == ["a", "b"]

    def test_bare_list(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([{"name": "only"}]))
        assert analyze.load_spans(str(path)) == [{"name": "only"}]

    def test_spans_key(self, tmp_path):
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(
            {"ok": True, "spans": [{"name": "from-serve"}]}))
        events = analyze.load_spans(str(path))
        assert events == [{"name": "from-serve"}]

    def test_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"name": "one"}\n\n{"name": "two"}\n')
        events = analyze.load_spans(str(path))
        assert [e["name"] for e in events] == ["one", "two"]

    def test_non_trace_json_raises(self, tmp_path):
        path = tmp_path / "scalar.json"
        path.write_text("42")
        with pytest.raises(ValueError):
            analyze.load_spans(str(path))


class TestMergeSpans:
    def test_orders_by_ts_then_pid(self):
        a = [{"ts": 5, "pid": 1}, {"ts": 1, "pid": 2}]
        b = [{"ts": 1, "pid": 1}, {"ts": 3, "pid": 9}]
        merged = analyze.merge_spans(a, b)
        assert [(e["ts"], e["pid"]) for e in merged] == \
            [(1, 1), (1, 2), (3, 9), (5, 1)]

    def test_missing_keys_default_to_zero(self):
        merged = analyze.merge_spans([{"name": "x"}], [{"ts": -1}])
        assert merged[0] == {"ts": -1}


class TestBuildTrees:
    def test_parentage(self, forest):
        roots = analyze.build_trees(forest, trace_id="t1")
        assert len(roots) == 1
        root = roots[0]
        assert root["span"]["name"] == "root"
        assert [c["span"]["name"] for c in root["children"]] == \
            ["build", "sim"]
        build = root["children"][0]
        assert [c["span"]["name"] for c in build["children"]] == \
            ["compile"]

    def test_unresolved_parent_becomes_root(self, forest):
        roots = analyze.build_trees(forest)
        names = sorted(r["span"]["name"] for r in roots)
        assert names == ["root", "stranger"]

    def test_non_x_events_ignored(self):
        events = [span("a", "a1"),
                  {"name": "counter", "ph": "C", "ts": 0}]
        roots = analyze.build_trees(events)
        assert len(roots) == 1

    def test_self_parent_does_not_recurse(self):
        events = [span("loop", "l1", parent_id="l1")]
        roots = analyze.build_trees(events)
        assert len(roots) == 1 and roots[0]["children"] == []


class TestValidate:
    def test_counts(self, forest):
        report = analyze.validate(forest)
        assert report["spans"] == 5
        assert report["roots"] == 1
        assert report["unresolved_parents"] == 1
        assert report["pids"] == [1, 2]
        assert report["trace_ids"] == ["t1", "t2"]

    def test_trace_filter(self, forest):
        report = analyze.validate(forest, trace_id="t1")
        assert report["spans"] == 4
        assert report["unresolved_parents"] == 0


class TestViews:
    def test_render_tree_indents_and_truncates(self, forest):
        lines = analyze.render_tree(forest, trace_id="t1")
        assert lines[0].startswith("root")
        assert lines[1].startswith("  build")
        assert lines[2].startswith("    compile")
        short = analyze.render_tree(forest, trace_id="t1",
                                    max_spans=2)
        assert len(short) == 3 and "truncated" in short[-1]

    def test_slowest_spans(self, forest):
        top = analyze.slowest_spans(forest, n=2)
        assert [e["name"] for e in top] == ["root", "sim"]

    def test_rollup_paths_and_self_time(self, forest):
        rows = {r["path"]: r for r in
                analyze.rollup(forest, trace_id="t1")}
        assert rows["root"]["self_us"] == pytest.approx(15.0)
        assert rows["root > build"]["total_us"] == pytest.approx(40.0)
        assert rows["root > build"]["self_us"] == pytest.approx(10.0)
        assert rows["root > build > compile"]["count"] == 1

    def test_rollup_self_time_never_negative(self):
        events = [span("parent", "p1", ts=0, dur=5.0),
                  span("child", "c1", parent_id="p1", ts=0,
                       dur=50.0)]
        rows = {r["path"]: r for r in analyze.rollup(events)}
        assert rows["parent"]["self_us"] == 0.0

    def test_render_rollup_header_and_limit(self, forest):
        rows = analyze.rollup(forest)
        lines = analyze.render_rollup(rows, limit=1)
        assert lines[0].split() == ["path", "count", "total",
                                    "ms", "self", "ms"]
        assert len(lines) == 2
