"""Span-context unit tests: ids, traceparent, ambient propagation."""

import threading

import pytest

from repro.trace import (
    SpanContext,
    activate,
    current_context,
    make_span,
    restore,
    stamp,
    thread_index,
    use,
)
from repro.trace.ring import SpanRing


class TestSpanContext:
    def test_fresh_context_ids(self):
        ctx = SpanContext()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None
        int(ctx.trace_id, 16)  # valid hex
        int(ctx.span_id, 16)

    def test_child_shares_trace_and_parents(self):
        root = SpanContext()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_dict_round_trip(self):
        ctx = SpanContext().child()
        again = SpanContext.from_dict(ctx.to_dict())
        assert (again.trace_id, again.span_id, again.parent_id) == \
            (ctx.trace_id, ctx.span_id, ctx.parent_id)

    def test_from_dict_garbage(self):
        assert SpanContext.from_dict(None) is None
        assert SpanContext.from_dict("nope") is None
        assert SpanContext.from_dict({}) is None


class TestTraceparent:
    def test_round_trip(self):
        ctx = SpanContext()
        header = ctx.to_traceparent()
        parsed = SpanContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        # The parsed span_id is the remote parent span.
        assert parsed.span_id == ctx.span_id

    def test_header_shape(self):
        header = SpanContext().to_traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == "00"
        assert len(trace_id) == 32 and len(span_id) == 16
        assert flags == "01"

    @pytest.mark.parametrize("header", [
        None,
        123,
        "",
        "garbage",
        "00-zz-zz-00",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",   # zero span id
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",   # forbidden version
        "00-" + "1" * 31 + "-" + "2" * 16 + "-01",   # short trace id
        "00-" + "1" * 32 + "-" + "2" * 15 + "-01",   # short span id
        "00-" + "1" * 32 + "-" + "2" * 16 + "-0",    # short flags
        "00-" + "1" * 32 + "-" + "2" * 16 + "-01-x",  # v00 extra field
        "00-" + "1" * 32 + "-" + "2" * 16,           # missing flags
        "00-" + "A" * 32 + "-" + "2" * 16 + "-01",   # uppercase hex
    ])
    def test_malformed_headers_ignored(self, header):
        assert SpanContext.from_traceparent(header) is None

    def test_future_version_with_extra_fields_accepted(self):
        header = "01-%s-%s-01-extrastuff" % ("a" * 32, "b" * 16)
        parsed = SpanContext.from_traceparent(header)
        assert parsed is not None and parsed.trace_id == "a" * 32


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_context() is None

    def test_use_scopes(self):
        ctx = SpanContext()
        with use(ctx):
            assert current_context() is ctx
            inner = ctx.child()
            with use(inner):
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is None

    def test_use_none_is_noop(self):
        outer = SpanContext()
        with use(outer):
            with use(None):
                assert current_context() is outer

    def test_activate_restore(self):
        ctx = SpanContext()
        token = activate(ctx)
        try:
            assert current_context() is ctx
        finally:
            restore(token)
        assert current_context() is None

    def test_threads_do_not_leak_context(self):
        seen = []
        ctx = SpanContext()

        def probe():
            seen.append(current_context())

        with use(ctx):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen == [None]


class TestThreadIndex:
    def test_stable_and_small(self):
        first = thread_index()
        assert thread_index() == first
        assert 1 <= first < 10000

    def test_distinct_threads_distinct_indices(self):
        results = {}
        # All threads must be alive at once: get_ident() values are
        # recycled, and a recycled ident legitimately reuses its index.
        barrier = threading.Barrier(4)

        def record(key):
            barrier.wait(timeout=10)
            results[key] = thread_index()
            barrier.wait(timeout=10)

        threads = [threading.Thread(target=record, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        values = list(results.values())
        assert len(set(values)) == len(values)
        assert thread_index() not in values


class TestMakeSpan:
    def test_event_shape(self):
        ctx = SpanContext().child()
        event = make_span("work", ctx, 1000.0, 250.0, cat="test",
                          detail=7)
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["ts"] == 1000.0 and event["dur"] == 250.0
        assert event["trace_id"] == ctx.trace_id
        assert event["span_id"] == ctx.span_id
        assert event["parent_id"] == ctx.parent_id
        assert event["args"] == {"detail": 7}

    def test_no_context_no_ids(self):
        event = make_span("work", None, 0.0, 1.0)
        assert "trace_id" not in event and "span_id" not in event

    def test_stamp_root_has_no_parent_key(self):
        event = stamp({"name": "x"}, SpanContext())
        assert "parent_id" not in event


class TestSpanRing:
    def test_bounded_with_drop_count(self):
        ring = SpanRing(capacity=3)
        for i in range(5):
            ring.add({"name": str(i), "trace_id": "t"})
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e["name"] for e in ring.events()] == ["2", "3", "4"]

    def test_trace_id_filter(self):
        ring = SpanRing(capacity=10)
        ring.add_events([{"name": "a", "trace_id": "t1"},
                         {"name": "b", "trace_id": "t2"},
                         {"name": "c", "trace_id": "t1"}])
        assert [e["name"] for e in ring.events(trace_id="t1")] == \
            ["a", "c"]
        assert ring.events(trace_id="absent") == []

    def test_clear(self):
        ring = SpanRing(capacity=2)
        ring.add_events([{"n": 1}, {"n": 2}, {"n": 3}])
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanRing(capacity=0)
