"""Cross-process span parentage: fork workers rejoin the caller's tree.

The fork pool pickles the ambient :class:`SpanContext` to each worker
(see ``repro.build.pool._call_with_context``), so spans recorded in a
forked build or fuzz worker carry the submitting trace's id and a
parent chain that resolves back into the parent process.
"""

import os

from repro.build.driver import IncrementalBuilder
from repro.build.scheduler import _fork_available
from repro.gen.runner import run_sweep
from repro.trace import SpanContext, use
from repro.trace.analyze import validate

ENTITY = """entity %(name)s is end %(name)s;
architecture a of %(name)s is
  signal x : integer := %(init)d;
begin
end a;
"""


def _write_project(tmp_path, n=3):
    files = []
    for i in range(n):
        p = tmp_path / ("e%d.vhd" % i)
        p.write_text(ENTITY % {"name": "e%d" % i, "init": i})
        files.append(str(p))
    return files


def _connected_to(spans, root):
    """Every span in ``spans`` must parent into the set or the root."""
    ids = {e["span_id"] for e in spans}
    for event in spans:
        assert event["trace_id"] == root.trace_id, event
        parent = event.get("parent_id")
        assert parent in ids or parent == root.span_id, event


class TestForkedBuild:
    def test_worker_spans_rejoin_the_ambient_trace(self, tmp_path):
        files = _write_project(tmp_path)
        builder = IncrementalBuilder(str(tmp_path / "libs"), jobs=2)
        root = SpanContext()
        with use(root):
            report = builder.build(files)

        spans = [e for e in report.trace_events
                 if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        assert "build" in names
        assert "compile_file" in names
        _connected_to(spans, root)
        # The driver's "build" span is the in-process root.
        (build_span,) = [e for e in spans if e["name"] == "build"]
        assert build_span["parent_id"] == root.span_id

        compile_pids = {e["pid"] for e in spans
                        if e["name"] == "compile_file"}
        if _fork_available():
            # 3 independent files across 2 workers: at least one
            # compile happened outside the driver process, and its
            # span still resolved into the tree above.
            assert compile_pids - {os.getpid()}
        else:  # pragma: no cover - non-fork platforms
            assert compile_pids == {os.getpid()}

    def test_untraced_build_is_still_one_tree(self, tmp_path):
        """No ambient context: the build span roots its own trace."""
        files = _write_project(tmp_path, n=2)
        builder = IncrementalBuilder(str(tmp_path / "libs"), jobs=2)
        report = builder.build(files)
        spans = [e for e in report.trace_events
                 if e.get("ph") == "X"]
        info = validate(spans)
        assert info["spans"] == len(spans) > 0
        assert info["roots"] == 1
        assert info["unresolved_parents"] == 0
        assert len(info["trace_ids"]) == 1


class TestForkedFuzz:
    def test_fuzz_worker_spans_carry_the_trace(self):
        root = SpanContext()
        with use(root):
            report = run_sweep(3, 4, jobs=2, shrink_failures=False)
        spans = report.trace_events
        assert len(spans) == 4
        assert all(e["name"] == "fuzz_design" for e in spans)
        _connected_to(spans, root)
        # Every worker span parents directly on the sweep's context.
        assert {e["parent_id"] for e in spans} == {root.span_id}
        if _fork_available():
            assert {e["pid"] for e in spans} - {os.getpid()}

    def test_untraced_sweep_records_no_spans(self):
        """CLI fuzz runs with no ambient context must stay span-free
        (their report envelopes are byte-compared in the diff gate)."""
        report = run_sweep(3, 3, jobs=1, shrink_failures=False)
        assert report.trace_events == []
        assert all("trace" not in r for r in report.records)
