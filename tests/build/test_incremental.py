"""End-to-end incremental build scenarios (the tentpole's acceptance
surface): no-op rebuilds are free, layout edits still hit, interface
changes cascade exactly as far as they must, reference libraries are
never rebuilt, and parallel builds are byte-identical to serial."""

import glob
import os

import pytest

from repro.build import BuildError, IncrementalBuilder
from repro.vhdl.elaborate import Elaborator

NS = 10**6

PKG = """
package util is
  constant width : integer := 8;
  function bump (x : integer) return integer;
end util;
"""

PKG_BODY = """
package body util is
  function bump (x : integer) return integer is
  begin
    return x + 1;
  end bump;
end util;
"""

ENT = """
entity leaf is
  generic ( delta : integer := 1 );
  port ( x : in integer; y : out integer );
end leaf;
"""

ARCH_PLUS = """
architecture plus of leaf is
begin
  y <= x + delta;
end plus;
"""

ARCH_MINUS = """
architecture minus of leaf is
begin
  y <= x - delta;
end minus;
"""

TOP = """
entity top is end top;
architecture bench of top is
  component leaf
    generic ( delta : integer := 1 );
    port ( x : in integer; y : out integer );
  end component;
  signal a : integer := 10;
  signal b : integer := 0;
begin
  u1 : leaf port map ( x => a, y => b );
end bench;
"""


def write(path, text):
    with open(str(path), "w") as f:
        f.write(text)
    return str(path)


@pytest.fixture()
def project(tmp_path):
    files = [
        write(tmp_path / "pkg.vhd", PKG),
        write(tmp_path / "pkg_body.vhd", PKG_BODY),
        write(tmp_path / "ent.vhd", ENT),
        write(tmp_path / "plus.vhd", ARCH_PLUS),
        write(tmp_path / "minus.vhd", ARCH_MINUS),
        write(tmp_path / "top.vhd", TOP),
    ]
    return files, str(tmp_path / "libs")


def artifacts(root):
    """Relative path -> bytes of every artifact (manifest excluded)."""
    out = {}
    for path in sorted(glob.glob(os.path.join(root, "**", "*"),
                                 recursive=True)):
        if os.path.isfile(path) and "build.state" not in path:
            with open(path, "rb") as f:
                out[os.path.relpath(path, root)] = f.read()
    return out


class TestColdAndWarm:
    def test_cold_build_compiles_everything(self, project):
        files, root = project
        report = IncrementalBuilder(root).build(files)
        assert report.ok, report.summary()
        assert set(report.paths("compiled")) == set(files)
        assert report.stats["hits"] == 0

    def test_warm_noop_rebuild_is_all_hits_zero_ag_evals(self, project):
        """The acceptance bar: a no-change rebuild performs zero AG
        evaluations — verified by the cache-stats accounting."""
        files, root = project
        IncrementalBuilder(root).build(files)
        report = IncrementalBuilder(root).build(files)
        assert set(report.paths("hit")) == set(files)
        assert report.paths("compiled") == []
        assert report.stats["ag_evaluations"] == 0
        assert report.stats["hits"] == len(files)
        assert report.stats["misses"] == 0

    def test_whitespace_and_comment_edit_still_hits(self, project):
        files, root = project
        IncrementalBuilder(root).build(files)
        with open(files[3]) as f:
            text = f.read()
        write(files[3],
              "-- edited comment only\n" + text.replace("\n", "\n\n"))
        report = IncrementalBuilder(root).build(files)
        assert report.paths("compiled") == []
        assert report.stats["ag_evaluations"] == 0

    def test_force_rebuilds_everything(self, project):
        files, root = project
        IncrementalBuilder(root).build(files)
        report = IncrementalBuilder(root).build(files, force=True)
        assert set(report.paths("compiled")) == set(files)

    def test_missing_artifact_triggers_rebuild(self, project):
        files, root = project
        IncrementalBuilder(root).build(files)
        os.unlink(os.path.join(root, "work", "leaf.vif.json"))
        report = IncrementalBuilder(root).build(files)
        assert str(files[2]) in report.paths("compiled")

    def test_corrupt_manifest_degrades_to_cold(self, project):
        files, root = project
        IncrementalBuilder(root).build(files)
        with open(os.path.join(root, "build.state.json"), "w") as f:
            f.write("not json at all {{{")
        report = IncrementalBuilder(root).build(files)
        assert report.ok
        assert set(report.paths("compiled")) == set(files)


class TestInvalidation:
    def test_entity_interface_change_invalidates_architectures(
            self, project):
        files, root = project
        IncrementalBuilder(root).build(files)
        write(files[2], ENT.replace(
            "y : out integer );", "y : out integer; z : out bit );"))
        report = IncrementalBuilder(root).build(files)
        compiled = set(report.paths("compiled"))
        assert files[2] in compiled           # the entity itself
        assert files[3] in compiled           # arch plus
        assert files[4] in compiled           # arch minus
        assert files[5] not in compiled       # top: component-bound
        assert report.stats["invalidated"] >= 2
        assert "interface of work.leaf changed" in \
            report.reasons[files[3]]

    def test_package_body_change_early_cutoff(self, project):
        """Editing a *body* rebuilds only that file: the package
        declaration's interface digest is untouched, so users of the
        package stay cached."""
        files, root = project
        IncrementalBuilder(root).build(files)
        write(files[1], PKG_BODY.replace("x + 1", "x + 2"))
        report = IncrementalBuilder(root).build(files)
        assert report.paths("compiled") == [files[1]]
        assert report.stats["ag_evaluations"] == 1

    def test_package_constant_change_invalidates_users(self, tmp_path):
        pkg = write(tmp_path / "p.vhd",
                    "package p is constant k : integer := 3; end p;")
        user = write(tmp_path / "u.vhd", """
            use work.p.all;
            entity u is end u;
            architecture a of u is
              signal n : integer := k;
            begin
            end a;
        """)
        root = str(tmp_path / "libs")
        IncrementalBuilder(root).build([pkg, user])
        write(pkg, "package p is constant k : integer := 4; end p;")
        report = IncrementalBuilder(root).build([pkg, user])
        assert set(report.paths("compiled")) == {pkg, user}
        builder = IncrementalBuilder(root)
        sim = Elaborator(builder.library()).elaborate("u")
        sim.run(until_fs=NS)
        assert sim.value("n") == 4

    def test_failed_file_skips_dependents(self, tmp_path):
        pkg = write(tmp_path / "p.vhd",
                    "package p is constant k : integer := not_a_name; "
                    "end p;")
        user = write(tmp_path / "u.vhd", """
            use work.p.all;
            entity u is end u;
            architecture a of u is
            begin
            end a;
        """)
        root = str(tmp_path / "libs")
        report = IncrementalBuilder(root).build([pkg, user])
        assert not report.ok
        assert report.actions[pkg] == "failed"
        assert report.actions[user] == "skipped"
        # Fixing the package rebuilds both.
        write(pkg, "package p is constant k : integer := 1; end p;")
        report = IncrementalBuilder(root).build([pkg, user])
        assert report.ok, report.summary()
        assert set(report.paths("compiled")) == {pkg, user}


class TestCompileOrder:
    def test_latest_architecture_follows_rebuild_order(self, project):
        """§3.3's usage-history default, incrementally: recompiling
        one architecture file moves it to the end of the recorded
        compile order, so it becomes the default binding."""
        files, root = project
        IncrementalBuilder(root).build(files)
        builder = IncrementalBuilder(root)
        sim = Elaborator(builder.library()).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("b") == 9  # minus.vhd compiled after plus.vhd

        # A real edit to plus.vhd makes plus the latest architecture.
        write(files[3], ARCH_PLUS.replace("x + delta", "x + delta + 0"))
        report = IncrementalBuilder(root).build(files)
        assert report.paths("compiled") == [files[3]]
        builder = IncrementalBuilder(root)
        sim = Elaborator(builder.library()).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("b") == 11

        # And a warm rebuild leaves the order (and behavior) alone.
        IncrementalBuilder(root).build(files)
        builder = IncrementalBuilder(root)
        sim = Elaborator(builder.library()).elaborate("top")
        sim.run(until_fs=NS)
        assert sim.value("b") == 11


class TestReferenceLibraries:
    def test_reference_library_never_rebuilt(self, tmp_path):
        root = str(tmp_path / "libs")
        # Populate a vendor library directly (a previous delivery).
        from repro.vhdl.compiler import Compiler
        from repro.vhdl.library import LibraryManager

        vendor_lib = LibraryManager(root=root, work="vendor")
        Compiler(library=vendor_lib, work="vendor").compile(
            "package cells is constant cellcount : integer := 5; "
            "end cells;")
        vendor_before = artifacts(os.path.join(root, "vendor"))

        src = write(tmp_path / "use_vendor.vhd", """
            library vendor;
            use vendor.cells.all;
            entity e is end e;
            architecture a of e is
              signal n : integer := cellcount;
            begin
            end a;
        """)
        builder = IncrementalBuilder(root, reference_libs=("vendor",))
        report = builder.build([src])
        assert report.ok, report.summary()
        # Vendor artifacts are bit-for-bit untouched, and a warm
        # rebuild of the user is a hit.
        assert artifacts(os.path.join(root, "vendor")) == vendor_before
        report = IncrementalBuilder(
            root, reference_libs=("vendor",)).build([src])
        assert report.paths("hit") == [src]
        assert report.stats["ag_evaluations"] == 0


class TestParallel:
    def test_parallel_build_matches_serial_byte_for_byte(self, project):
        files, _ = project
        base = os.path.dirname(files[0])
        serial_root = os.path.join(base, "serial-libs")
        parallel_root = os.path.join(base, "parallel-libs")
        r1 = IncrementalBuilder(serial_root, jobs=1).build(files)
        r2 = IncrementalBuilder(parallel_root, jobs=2).build(files)
        assert r1.ok and r2.ok
        a, b = artifacts(serial_root), artifacts(parallel_root)
        assert a.keys() == b.keys()
        assert [k for k in a if a[k] != b[k]] == []

    def test_parallel_schedule_batches_independent_files(self, project):
        files, root = project
        report = IncrementalBuilder(root, jobs=2).build(files)
        assert report.ok
        flat = [p for batch in report.batches for p in batch]
        assert sorted(flat) == sorted(files)
        # plus/minus/top can only run after ent/pkg...
        batch_of = {p: i for i, batch in enumerate(report.batches)
                    for p in batch}
        assert batch_of[files[2]] < batch_of[files[3]]
        assert batch_of[files[2]] < batch_of[files[4]]
        assert batch_of[files[0]] < batch_of[files[1]]
        # ... and the independent architectures share a batch.
        assert batch_of[files[3]] == batch_of[files[4]]


class TestErrors:
    def test_root_is_required(self):
        with pytest.raises(BuildError):
            IncrementalBuilder(None)

    def test_missing_input_file(self, tmp_path):
        builder = IncrementalBuilder(str(tmp_path / "libs"))
        with pytest.raises(BuildError):
            builder.build([str(tmp_path / "nope.vhd")])

    def test_empty_input(self, tmp_path):
        builder = IncrementalBuilder(str(tmp_path / "libs"))
        with pytest.raises(BuildError):
            builder.build([])
