"""The unit dependency DAG and its persistence."""

from repro.build.depgraph import DependencyGraph


def _sample():
    g = DependencyGraph()
    g.set_deps(("work", "a(top)"), [("work", "top"), ("work", "util")])
    g.set_deps(("work", "top"), [("work", "util")])
    g.set_deps(("work", "util"), [("std", "standard")])
    g.add_node(("std", "standard"))
    return g


class TestGraph:
    def test_deps_and_dependents(self):
        g = _sample()
        assert g.deps_of(("work", "top")) == [("work", "util")]
        assert g.dependents_of(("work", "util")) == [
            ("work", "a(top)"), ("work", "top")]

    def test_transitive_dependents(self):
        g = _sample()
        assert g.transitive_dependents([("std", "standard")]) == [
            ("work", "a(top)"), ("work", "top"), ("work", "util")]

    def test_self_edges_dropped(self):
        g = DependencyGraph()
        g.set_deps(("work", "x"), [("work", "x"), ("work", "y")])
        assert g.deps_of(("work", "x")) == [("work", "y")]

    def test_topo_batches_layering(self):
        g = _sample()
        batches = g.topo_batches()
        assert batches == [
            [("std", "standard")],
            [("work", "util")],
            [("work", "top")],
            [("work", "a(top)")],
        ]

    def test_topo_batches_restricted(self):
        g = _sample()
        batches = g.topo_batches([("work", "top"), ("work", "a(top)")])
        assert batches == [[("work", "top")], [("work", "a(top)")]]

    def test_cycle_flushes_deterministically(self):
        g = DependencyGraph()
        g.set_deps(("w", "a"), [("w", "b")])
        g.set_deps(("w", "b"), [("w", "a")])
        batches = g.topo_batches()
        assert batches == [[("w", "a"), ("w", "b")]]

    def test_roundtrip_json(self):
        g = _sample()
        g2 = DependencyGraph.from_json(g.to_json())
        assert g2.to_json() == g.to_json()
        assert g2.deps_of(("work", "a(top)")) == \
            g.deps_of(("work", "a(top)"))
