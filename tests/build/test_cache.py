"""The build manifest: atomic persistence and tolerant loading."""

import json
import os

from repro.build.cache import STATE_NAME, BuildCache


def _populated(root):
    cache = BuildCache(root)
    cache.set_file_entry(
        "/src/pkg.vhd", "f" * 64, [("work", "util")], {})
    cache.set_file_entry(
        "/src/top.vhd", "a" * 64,
        [("work", "top"), ("work", "a(top)")],
        {("work", "util"): "d" * 64})
    cache.set_digest(("work", "util"), "d" * 64)
    cache.graph.set_deps(("work", "a(top)"), [("work", "util")])
    cache.compile_order = [
        ("work", "util"), ("work", "top"), ("work", "a(top)")]
    return cache


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        root = str(tmp_path)
        _populated(root).save()
        cache = BuildCache(root).load()
        assert cache.loaded_from_disk
        assert cache.files() == ["/src/pkg.vhd", "/src/top.vhd"]
        entry = cache.file_entry("/src/top.vhd")
        assert entry["units"] == [("work", "top"), ("work", "a(top)")]
        assert cache.recorded_dep_digests("/src/top.vhd") == {
            ("work", "util"): "d" * 64}
        assert cache.digest_of(("work", "util")) == "d" * 64
        assert cache.compile_order == [
            ("work", "util"), ("work", "top"), ("work", "a(top)")]
        assert cache.graph.deps_of(("work", "a(top)")) == [
            ("work", "util")]

    def test_save_is_atomic(self, tmp_path):
        """The manifest is replaced, never truncated in place: no
        temp droppings survive a successful save."""
        root = str(tmp_path)
        _populated(root).save()
        _populated(root).save()
        leftovers = [f for f in os.listdir(root) if f != STATE_NAME]
        assert leftovers == []

    def test_missing_manifest_is_cold(self, tmp_path):
        cache = BuildCache(str(tmp_path)).load()
        assert not cache.loaded_from_disk
        assert cache.files() == []

    def test_corrupt_manifest_quarantined(self, tmp_path):
        root = str(tmp_path)
        path = os.path.join(root, STATE_NAME)
        with open(path, "w") as f:
            f.write("{ this is not json")
        cache = BuildCache(root).load()
        assert not cache.loaded_from_disk
        assert cache.stats["quarantined"] == 1
        assert os.path.exists(path + ".corrupt")
        assert not os.path.exists(path)

    def test_version_mismatch_is_cold_not_fatal(self, tmp_path):
        root = str(tmp_path)
        with open(os.path.join(root, STATE_NAME), "w") as f:
            json.dump({"version": 999}, f)
        cache = BuildCache(root).load()
        assert not cache.loaded_from_disk

    def test_owner_of(self, tmp_path):
        cache = _populated(str(tmp_path))
        assert cache.owner_of(("work", "util")) == "/src/pkg.vhd"
        assert cache.owner_of(("work", "ghost")) is None


class TestAccounting:
    def test_stats(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        cache.record_hit()
        cache.record_miss()
        cache.record_miss()
        cache.record_invalidation()
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 2
        assert cache.stats["invalidated"] == 1
        text = cache.format_stats()
        assert "1 hit(s)" in text and "2 miss(es)" in text
