"""Name harvesting and topological file batching."""

from repro.build.scheduler import file_batches, harvest_names
from repro.vhdl.lexer import scan


def _names(source, **kw):
    return harvest_names(scan(source), **kw)


class TestHarvest:
    def test_entity_and_package_provide(self):
        provides, requires = _names(
            "entity e is end e; package p is end p;")
        assert provides == {"e", "p"}
        assert requires == set()

    def test_architecture_requires_entity(self):
        provides, requires = _names(
            "architecture rtl of cnt is begin end rtl;")
        assert provides == set()
        assert requires == {"cnt"}

    def test_configuration_provides_and_requires(self):
        provides, requires = _names(
            "configuration c of top is for a end for; end c;")
        assert provides == {"c"}
        assert requires == {"top"}

    def test_package_body_requires_package(self):
        provides, requires = _names(
            "package body util is end util;")
        assert requires == {"util"}

    def test_use_clause_requires(self):
        _, requires = _names(
            "use work.util.all; entity e is end e;")
        assert "util" in requires

    def test_selected_name_requires(self):
        _, requires = _names(
            "entity e is end e;\n"
            "architecture a of e is\n"
            "  signal n : integer := work.cfg.depth;\n"
            "begin end a;")
        assert "cfg" in requires

    def test_library_clause_names_become_visible(self):
        _, requires = _names(
            "library vendor; use vendor.cells.all; entity e is end e;")
        assert "cells" in requires

    def test_same_file_provision_not_required(self):
        provides, requires = _names(
            "entity e is end e;\n"
            "architecture a of e is begin end a;")
        assert provides == {"e"}
        assert "e" not in requires

    def test_bound_entity_reference(self):
        _, requires = _names(
            "architecture b of top is\n"
            "  component leaf port ( x : in bit ); end component;\n"
            "  for u1 : leaf use entity work.leaf(plus);\n"
            "begin end b;")
        assert "leaf" in requires


class TestFileBatches:
    def test_layers_respect_deps(self):
        batches = file_batches(
            ["a", "b", "c"], {"b": {"a"}, "c": {"a"}})
        assert batches == [["a"], ["b", "c"]]

    def test_input_order_tie_break(self):
        batches = file_batches(["z", "m", "a"], {})
        assert batches == [["z", "m", "a"]]

    def test_chain(self):
        batches = file_batches(
            ["a", "b", "c"], {"b": {"a"}, "c": {"b"}})
        assert batches == [["a"], ["b"], ["c"]]

    def test_cycle_degrades_to_singletons(self):
        batches = file_batches(["a", "b"], {"a": {"b"}, "b": {"a"}})
        assert batches == [["a"], ["b"]]

    def test_external_deps_ignored(self):
        batches = file_batches(["a"], {"a": {"/not/in/build"}})
        assert batches == [["a"]]
