"""Concurrency contract of the design-library layer.

Two levels:

* in-process — the copy-on-write ``LibraryManager`` publishes whole
  states, so a reader thread racing a writer never observes a
  half-committed library, and a pinned :meth:`snapshot` stays frozen
  while the writer moves on;
* multi-process — N reader processes hammer a library root (manifest
  plus VIF artifacts) while one writer process commits builds; readers
  must only ever see valid JSON and fully-formed libraries, and the
  final ``build.state.json`` must be intact (no ``.corrupt``
  quarantine files).
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.build import IncrementalBuilder
from repro.build.cache import BuildCache
from repro.vhdl.library import LibraryError, LibraryManager

ENTITY = "entity e%d is end e%d;\n"


def compile_entity(library, n):
    from repro.vhdl.compiler import Compiler

    compiler = Compiler(library=library, work="work", strict=False)
    result = compiler.compile(ENTITY % (n, n), filename="e%d.vhd" % n)
    assert result.ok, result.messages
    return result


class TestSnapshotIsolation:
    def test_snapshot_pins_version_and_contents(self):
        library = LibraryManager(root=None)
        compile_entity(library, 1)
        snap = library.snapshot()
        v1 = snap.version
        order1 = list(snap.compile_order)
        compile_entity(library, 2)
        # The live manager moved on ...
        assert library.version > v1
        assert library.find_unit("work", "e2") is not None
        # ... the pinned snapshot did not.
        assert snap.version == v1
        assert list(snap.compile_order) == order1
        assert snap.find_unit("work", "e2") is None

    def test_snapshot_is_read_only(self):
        library = LibraryManager(root=None)
        compile_entity(library, 1)
        snap = library.snapshot()
        with pytest.raises(LibraryError):
            snap.register_unit("work", library.find_unit("work", "e1"))
        with pytest.raises(LibraryError):
            snap.add_library("other")

    def test_read_only_manager_rejects_writes(self, tmp_path):
        root = str(tmp_path)
        library = LibraryManager(root=root)
        compile_entity(library, 1)
        reader = LibraryManager(root=root, read_only=True)
        assert reader.find_unit("work", "e1") is not None
        with pytest.raises(LibraryError):
            reader.register_unit("work",
                                 reader.find_unit("work", "e1"))

    def test_reader_threads_race_writer_without_tearing(self):
        """Readers iterating the library mid-commit never see a
        partial state (no dict-mutation errors, no half libraries)."""
        library = LibraryManager(root=None)
        compile_entity(library, 0)
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    snap = library.snapshot()
                    order = list(snap.compile_order)
                    units = dict(snap._units)
                    # Every ordered key must resolve in the same
                    # snapshot — a torn publish would break this.
                    for lib_key in order:
                        if lib_key not in units:
                            errors.append("order/units tear: %r"
                                          % (lib_key,))
                            return
                    again = list(snap.compile_order)
                    if again != order:
                        errors.append("snapshot mutated underfoot")
                        return
                except Exception as exc:  # any raise is a failure
                    errors.append(repr(exc))
                    return

        threads = [threading.Thread(target=reader)
                   for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for n in range(1, 40):
                compile_entity(library, n)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert errors == []
        assert len(library.compile_order) >= 40


def _writer_proc(root, rounds, done):
    """Commit one new source per round through the real build path."""
    src_dir = os.path.join(root, "src")
    os.makedirs(src_dir, exist_ok=True)
    lib_root = os.path.join(root, "libs")
    for n in range(rounds):
        path = os.path.join(src_dir, "e%d.vhd" % n)
        with open(path, "w") as f:
            f.write(ENTITY % (n, n))
        builder = IncrementalBuilder(lib_root, work="work", jobs=1)
        report = builder.build([path])
        if any(a == "failed" for a in report.actions.values()):
            done.put(("writer-error", n))
            return
    done.put(("writer-done", rounds))


def _reader_proc(root, stop_flag, out):
    """Reload manifest + library until told to stop; report tears."""
    lib_root = os.path.join(root, "libs")
    reads = 0
    try:
        while not stop_flag.is_set():
            if not os.path.isdir(lib_root):
                continue
            cache = BuildCache(lib_root).load()
            library = LibraryManager(root=lib_root, work="work",
                                     read_only=True)
            if library.quarantined:
                out.put(("corrupt-artifact",
                         list(library.quarantined)))
                return
            # Every unit recorded in the manifest order must be
            # loadable from the library directory right now.
            for lib, key in cache.compile_order:
                if "(" in key:
                    continue  # secondary units need their primary
                if library.find_unit(lib, key) is None:
                    out.put(("missing-unit", (lib, key)))
                    return
            reads += 1
    except Exception as exc:
        out.put(("reader-error", repr(exc)))
        return
    out.put(("reader-done", reads))


@pytest.mark.slow
class TestMultiProcessStress:
    def test_readers_race_writer_on_disk(self, tmp_path):
        """N reader processes + 1 writer: snapshot isolation on disk
        and an uncorrupted build.state.json at the end."""
        ctx = multiprocessing.get_context("fork")
        root = str(tmp_path)
        stop_flag = ctx.Event()
        out = ctx.Queue()
        rounds = 12
        n_readers = 3

        writer = ctx.Process(target=_writer_proc,
                             args=(root, rounds, out))
        readers = [ctx.Process(target=_reader_proc,
                               args=(root, stop_flag, out))
                   for _ in range(n_readers)]
        writer.start()
        for p in readers:
            p.start()
        try:
            writer.join(timeout=300)
            assert not writer.is_alive(), "writer hung"
        finally:
            stop_flag.set()
            for p in readers:
                p.join(timeout=60)
                if p.is_alive():
                    p.terminate()

        results = []
        while len(results) < 1 + n_readers:
            results.append(out.get(timeout=60))
        tags = [tag for tag, _ in results]
        bad = [r for r in results
               if r[0] not in ("writer-done", "reader-done")]
        assert bad == [], bad
        assert tags.count("writer-done") == 1
        assert tags.count("reader-done") == n_readers

        # Final state: valid manifest, all units present, nothing
        # quarantined.
        lib_root = os.path.join(root, "libs")
        with open(os.path.join(lib_root,
                               "build.state.json")) as f:
            manifest = json.load(f)
        assert manifest["compile_order"]
        assert len(manifest["compile_order"]) == rounds
        corrupt = [name for _, _, files in os.walk(lib_root)
                   for name in files if name.endswith(".corrupt")]
        assert corrupt == []
        final = LibraryManager(root=lib_root, read_only=True)
        assert final.quarantined == []
        for n in range(rounds):
            assert final.find_unit("work", "e%d" % n) is not None


class TestQuarantineDiagnostics:
    def test_corrupt_artifact_surfaces_as_diagnostic(self, tmp_path):
        root = str(tmp_path)
        library = LibraryManager(root=root)
        compile_entity(library, 1)
        # Smash one artifact on disk, then reload.
        work = os.path.join(root, "work")
        victims = [os.path.join(work, f) for f in os.listdir(work)
                   if f.endswith(".json")]
        assert victims
        with open(victims[0], "w") as f:
            f.write("{ not json")
        reloaded = LibraryManager(root=root)
        assert reloaded.quarantined
        diags = reloaded.quarantine_diagnostics()
        assert diags
        assert all(d.code == "LIB001" for d in diags)
        assert all(d.severity == "warning" for d in diags)
        # Structured rendering works (JSON lines, one per artifact).
        from repro.diag import render_jsonl

        lines = render_jsonl(diags).splitlines()
        assert len(lines) == len(diags)
        assert json.loads(lines[0])["code"] == "LIB001"

    def test_read_only_reload_does_not_move_corrupt_files(
            self, tmp_path):
        """A read-only reader must not quarantine (rename) files out
        from under the writer that owns them."""
        root = str(tmp_path)
        library = LibraryManager(root=root)
        compile_entity(library, 1)
        work = os.path.join(root, "work")
        victim = [os.path.join(work, f) for f in os.listdir(work)
                  if f.endswith(".json")][0]
        with open(victim, "w") as f:
            f.write("{ not json")
        reader = LibraryManager(root=root, read_only=True)
        assert reader.quarantined  # reported ...
        assert os.path.exists(victim)  # ... but left in place
        assert not os.path.exists(victim + ".corrupt")
