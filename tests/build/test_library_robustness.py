"""Crash-safety of the on-disk library: atomic artifact writes and
quarantine of corrupt VIF files instead of load-time crashes."""

import json
import os

from repro.vhdl.compiler import Compiler
from repro.vhdl.library import LibraryManager, unit_filename

ENTITY = """
entity e is
  port ( a : in bit; b : out bit );
end e;
architecture rtl of e is
begin
  b <= a;
end rtl;
"""


def _build(root):
    Compiler(root=root).compile(ENTITY)


class TestAtomicStore:
    def test_no_temp_droppings(self, tmp_path):
        root = str(tmp_path / "libs")
        _build(root)
        work = os.path.join(root, "work")
        leftovers = [f for f in os.listdir(work)
                     if f.startswith(".tmp.") or f.endswith(".part")]
        assert leftovers == []

    def test_rewrite_replaces_in_place(self, tmp_path):
        root = str(tmp_path / "libs")
        _build(root)
        _build(root)  # recompile: replace, not append/truncate
        path = os.path.join(root, "work",
                            unit_filename("e", "vif.json"))
        with open(path) as f:
            payload = json.load(f)  # still valid JSON
        assert payload["unit"] == "e"


class TestQuarantine:
    def test_corrupt_vif_json_quarantined_not_fatal(self, tmp_path):
        root = str(tmp_path / "libs")
        _build(root)
        victim = os.path.join(root, "work",
                              unit_filename("rtl(e)", "vif.json"))
        with open(victim, "w") as f:
            f.write("{ half a payload")
        # A fresh manager must come up instead of raising
        # json.JSONDecodeError, with the rot moved aside.
        lib = LibraryManager(root=root)
        assert lib.quarantined, "corrupt artifact not recorded"
        assert os.path.exists(victim + ".corrupt")
        assert not os.path.exists(victim)
        # The healthy unit survived the load.
        assert lib.find_unit("work", "e") is not None
        assert lib.find_architecture("work", "e", "rtl") is None

    def test_structurally_bad_payload_quarantined(self, tmp_path):
        root = str(tmp_path / "libs")
        _build(root)
        victim = os.path.join(root, "work",
                              unit_filename("e", "vif.json"))
        with open(victim, "w") as f:
            json.dump({"format": "VIF-999", "nodes": []}, f)
        lib = LibraryManager(root=root)
        assert any(victim in path for path, _ in lib.quarantined)
        assert lib.find_unit("work", "e") is None

    def test_recompile_heals_quarantined_unit(self, tmp_path):
        root = str(tmp_path / "libs")
        _build(root)
        victim = os.path.join(root, "work",
                              unit_filename("e", "vif.json"))
        with open(victim, "w") as f:
            f.write("garbage")
        LibraryManager(root=root)  # quarantines
        _build(root)               # recompile writes a fresh artifact
        lib = LibraryManager(root=root)
        assert lib.find_unit("work", "e") is not None
        assert lib.quarantined == []


class TestDependencyMetadata:
    def test_depends_of_surfaces_writer_set(self, tmp_path):
        root = str(tmp_path / "libs")
        c = Compiler(root=root)
        c.compile("package p is constant k : integer := 1; end p;")
        c.compile("""
            use work.p.all;
            entity e is end e;
        """)
        lib = LibraryManager(root=root)
        deps = lib.depends_of("work", "e")
        assert ("std", "standard") in deps or deps == [] or \
            all(isinstance(d, tuple) and len(d) == 2 for d in deps)
        # The architecture of an entity always depends on the entity.
        c.compile("architecture a of e is begin end a;")
        lib = LibraryManager(root=root)
        assert ("work", "e") in lib.depends_of("work", "a(e)")

    def test_apply_compile_order(self, tmp_path):
        root = str(tmp_path / "libs")
        c = Compiler(root=root)
        c.compile("entity x is end x;")
        c.compile("entity y is end y;")
        lib = LibraryManager(root=root)
        lib.apply_compile_order([("work", "y"), ("work", "x")])
        work_units = [k for l, k in lib.compile_order if l == "work"]
        assert work_units == ["y", "x"]
        # Unknown recorded entries are ignored; std stays in front.
        lib.apply_compile_order([("work", "ghost"), ("work", "x")])
        assert lib.compile_order[0] == ("std", "standard")
