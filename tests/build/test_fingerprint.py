"""Token-stream source fingerprints and VIF interface digests."""

from repro.build.fingerprint import (
    interface_digest,
    raw_fingerprint,
    source_fingerprint,
    tokens_fingerprint,
)
from repro.vhdl.compiler import Compiler
from repro.vhdl.lexer import scan

ENTITY = """
entity e is
  port ( a : in bit; b : out bit );
end e;
"""


class TestSourceFingerprint:
    def test_stable(self):
        assert source_fingerprint(ENTITY) == source_fingerprint(ENTITY)

    def test_whitespace_insensitive(self):
        reflowed = ENTITY.replace("\n", "\n\n").replace("  ", "\t ")
        assert source_fingerprint(reflowed) == source_fingerprint(ENTITY)

    def test_comment_insensitive(self):
        commented = "-- a header comment\n" + ENTITY.replace(
            "end e;", "end e;  -- trailing")
        assert source_fingerprint(commented) == source_fingerprint(ENTITY)

    def test_identifier_case_insensitive(self):
        """VHDL identifiers are case-insensitive; so is the hash."""
        shouted = ENTITY.replace("entity e", "ENTITY E")
        assert source_fingerprint(shouted) == source_fingerprint(ENTITY)

    def test_token_change_changes_hash(self):
        changed = ENTITY.replace("out bit", "in bit")
        assert source_fingerprint(changed) != source_fingerprint(ENTITY)

    def test_string_case_is_significant(self):
        a = 'entity e is end e; -- x\n'
        # identical apart from a *string literal* (case-sensitive)
        s1 = a + 'architecture r of e is begin assert false report "A"; end r;'
        s2 = a + 'architecture r of e is begin assert false report "a"; end r;'
        assert source_fingerprint(s1) != source_fingerprint(s2)

    def test_unscannable_falls_back_to_raw(self):
        broken = "entity ! @ $ %"
        # must not raise, and must be stable
        assert source_fingerprint(broken) == source_fingerprint(broken)

    def test_raw_and_token_salts_differ(self):
        text = "entity e is end e;"
        assert raw_fingerprint(text) != source_fingerprint(text)

    def test_tokens_fingerprint_matches_source(self):
        assert tokens_fingerprint(scan(ENTITY)) == \
            source_fingerprint(ENTITY)


class TestInterfaceDigest:
    def _payload(self, source, key):
        c = Compiler(strict=False)
        res = c.compile(source)
        assert res.ok, res.messages
        return c.library.payload_of("work", key)

    def test_stable_across_compiles(self):
        p1 = self._payload(ENTITY, "e")
        p2 = self._payload(ENTITY, "e")
        assert interface_digest(p1) == interface_digest(p2)

    def test_port_change_changes_digest(self):
        p1 = self._payload(ENTITY, "e")
        p2 = self._payload(ENTITY.replace(
            "b : out bit", "b : out bit; c : out bit"), "e")
        assert interface_digest(p1) != interface_digest(p2)

    def test_volatile_fields_ignored(self):
        """Generated code and line numbers do not shift the digest."""
        p1 = self._payload(ENTITY, "e")
        p2 = self._payload("\n\n\n\n" + ENTITY, "e")  # lines shift
        assert interface_digest(p1) != ""
        assert interface_digest(p1) == interface_digest(p2)

    def test_constant_value_is_interface(self):
        """A used package constant's *value* can be folded into
        dependents, so it is part of the interface."""
        p1 = self._payload(
            "package p is constant k : integer := 1; end p;", "p")
        p2 = self._payload(
            "package p is constant k : integer := 2; end p;", "p")
        assert interface_digest(p1) != interface_digest(p2)
