import os

import pytest

from repro.analysis import LintEngine
from repro.vhdl.compiler import Compiler

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture_path(name):
    return os.path.join(FIXTURES, name)


def compile_source(src, filename="t.vhd"):
    """Compile VHDL text into a fresh in-memory library."""
    compiler = Compiler()
    result = compiler.compile(src, filename)
    assert result.ok, result.messages
    return compiler


def compile_fixture(name):
    compiler = Compiler()
    result = compiler.compile_file(fixture_path(name))
    assert result.ok, result.messages
    return compiler


def lint_fixture(name, **engine_kwargs):
    compiler = compile_fixture(name)
    engine = LintEngine(library=compiler.library, **engine_kwargs)
    return engine.lint_library()


@pytest.fixture
def lint_source():
    def _lint(src, filename="t.vhd", **engine_kwargs):
        compiler = compile_source(src, filename)
        engine = LintEngine(library=compiler.library, **engine_kwargs)
        return engine.lint_library()

    return _lint
