-- RPL001 true negative: the complete sensitivity list, plus the
-- clocked idiom whose data reads sit under a clk'event guard.
entity rpl001_clean is end rpl001_clean;

architecture a of rpl001_clean is
  signal a_in, b_in, y : bit;
  signal clk, d, q : bit;
begin
  comb : process (a_in, b_in)
  begin
    y <= a_in and b_in;
  end process;

  reg : process (clk)
  begin
    if clk'event and clk = '1' then
      q <= d;
    end if;
  end process;

  clock : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;

  stim : process
  begin
    a_in <= '1' after 1 ns;
    b_in <= '1' after 2 ns;
    d <= '1' after 7 ns;
    wait;
  end process;

  mon : process (y, q)
  begin
    assert y = '0' or y = '1';
    assert q = '0' or q = '1';
  end process;
end a;
