-- RPL003 true positive: 'dead' is declared but nothing reads,
-- drives, waits on, or connects it.
entity rpl003_bad is end rpl003_bad;

architecture a of rpl003_bad is
  signal live : bit;
  signal dead : bit;
begin
  p : process
  begin
    live <= '1' after 1 ns;
    wait;
  end process;

  mon : process (live)
  begin
    assert live = '0' or live = '1';
  end process;
end a;
