-- RPL004 true positive (and RPL006): after its first wait, 'spin'
-- enters a loop with no wait statement — once resumed it can never
-- suspend again, and the assignment after the loop is unreachable.
entity rpl004_bad is end rpl004_bad;

architecture a of rpl004_bad is
  signal x : bit;
begin
  spin : process
  begin
    wait for 10 ns;
    loop
      x <= not x;
    end loop;
    x <= '0';
  end process;

  mon : process (x)
  begin
    assert x = '0' or x = '1';
  end process;
end a;
