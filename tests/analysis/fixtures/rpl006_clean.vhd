-- RPL006 true negative: the loop suspends, so the statement after
-- it is reachable whenever the loop exits.
entity rpl006_clean is end rpl006_clean;

architecture a of rpl006_clean is
  signal x, done : bit;
begin
  spin : process
  begin
    for i in 0 to 3 loop
      x <= not x;
      wait for 10 ns;
    end loop;
    done <= '1';
    wait;
  end process;

  mon : process (x, done)
  begin
    assert done = '0' or done = '1';
  end process;
end a;
