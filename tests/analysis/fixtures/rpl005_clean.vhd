-- RPL005 true negative: in ports are read and waited on, out ports
-- are driven.
entity rpl005_clean is
  port (d : in bit; q : out bit);
end rpl005_clean;

architecture a of rpl005_clean is
begin
  p : process (d)
  begin
    q <= d;
  end process;
end a;
