-- RPL003 true-negative: the package signal is never referenced in
-- the package's own unit, but another unit reads it through an
-- instance port map — it IS used, just not where it was declared.
package shared is
  signal bus_s : bit;
end shared;

entity sink is
  port (d : in bit);
end sink;

architecture rtl of sink is
begin
  watch : process (d)
  begin
    assert d = '0' or d = '1';
  end process;
end rtl;

entity holder is
end holder;

use work.shared.all;

architecture top of holder is
  component sink
    port (d : in bit);
  end component;
begin
  u0 : sink port map (d => bus_s);
end top;
