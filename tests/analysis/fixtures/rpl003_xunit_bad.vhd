-- RPL003 true-positive twin of rpl003_xunit_clean.vhd: the package
-- signal is declared but no unit anywhere reads, drives, or maps it.
package shared is
  signal bus_s : bit;
end shared;

entity sink is
  port (d : in bit);
end sink;

architecture rtl of sink is
begin
  watch : process (d)
  begin
    assert d = '0' or d = '1';
  end process;
end rtl;

entity holder is
end holder;

use work.shared.all;

architecture top of holder is
  component sink
    port (d : in bit);
  end component;
  signal local_s : bit;
begin
  u0 : sink port map (d => local_s);
end top;
