-- RPL001 true positive: 'comb' reads b_in but is only sensitive to
-- a_in, so simulation never re-evaluates it on b_in events.
entity rpl001_bad is end rpl001_bad;

architecture a of rpl001_bad is
  signal a_in, b_in, y : bit;
begin
  comb : process (a_in)
  begin
    y <= a_in and b_in;
  end process;

  stim : process
  begin
    a_in <= '1' after 1 ns;
    b_in <= '1' after 2 ns;
    wait;
  end process;

  mon : process (y)
  begin
    assert y = '0' or y = '1';
  end process;
end a;
