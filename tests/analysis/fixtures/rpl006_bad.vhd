-- RPL006 true positive: two statements after the wait-less infinite
-- loop can never execute.  (RPL004 necessarily fires here too.)
entity rpl006_bad is end rpl006_bad;

architecture a of rpl006_bad is
  signal x, done : bit;
begin
  spin : process
  begin
    wait for 10 ns;
    loop
      x <= not x;
    end loop;
    x <= '0';
    done <= '1';
  end process;

  mon : process (x, done)
  begin
    assert done = '0' or done = '1';
  end process;
end a;
