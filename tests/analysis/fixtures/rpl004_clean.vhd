-- RPL004 true negative: the infinite loop suspends on every
-- iteration, which is exactly what a process body is.
entity rpl004_clean is end rpl004_clean;

architecture a of rpl004_clean is
  signal x : bit;
begin
  spin : process
  begin
    loop
      x <= not x;
      wait for 10 ns;
    end loop;
  end process;

  mon : process (x)
  begin
    assert x = '0' or x = '1';
  end process;
end a;
