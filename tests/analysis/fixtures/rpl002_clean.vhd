-- RPL002 true negative: the same two drivers, but 'x' is declared
-- with a bus resolution function, so multiple drivers are legal.
package rpl002_pkg is
  function wired_or (vals : bit_vector) return bit;
end rpl002_pkg;

package body rpl002_pkg is
  function wired_or (vals : bit_vector) return bit is
  begin
    for i in vals'range loop
      if vals(i) = '1' then
        return '1';
      end if;
    end loop;
    return '0';
  end wired_or;
end rpl002_pkg;

entity rpl002_clean is end rpl002_clean;

use work.rpl002_pkg.all;

architecture a of rpl002_clean is
  signal x : wired_or bit;
  signal obs : bit;
begin
  p1 : process
  begin
    x <= '0' after 1 ns;
    wait;
  end process;

  p2 : process
  begin
    x <= '1' after 1 ns;
    wait;
  end process;

  mon : process (x)
  begin
    obs <= x;
  end process;

  obs_mon : process (obs)
  begin
    assert obs = '0' or obs = '1';
  end process;
end a;
