-- RPL003 true negative: every declared signal is used somewhere
-- (driven, read, or a wait/sensitivity source).
entity rpl003_clean is end rpl003_clean;

architecture a of rpl003_clean is
  signal live : bit;
  signal echo : bit;
begin
  p : process
  begin
    live <= '1' after 1 ns;
    wait;
  end process;

  mon : process (live)
  begin
    echo <= live;
  end process;

  echo_mon : process (echo)
  begin
    assert echo = '0' or echo = '1';
  end process;
end a;
