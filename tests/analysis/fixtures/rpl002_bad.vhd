-- RPL002 true positive: two processes drive 'x', which has no
-- resolution function.  Simulating this design raises the matching
-- runtime error from Signal.compute_value at the same declaration.
entity rpl002_bad is end rpl002_bad;

architecture a of rpl002_bad is
  signal x : bit;
  signal obs : bit;
begin
  p1 : process
  begin
    x <= '0' after 1 ns;
    wait;
  end process;

  p2 : process
  begin
    x <= '1' after 1 ns;
    wait;
  end process;

  mon : process (x)
  begin
    obs <= x;
  end process;

  obs_mon : process (obs)
  begin
    assert obs = '0' or obs = '1';
  end process;
end a;
