-- RPL005 true positive: 'p' drives its own mode-in port, inverting
-- the declared interface direction.
entity rpl005_bad is
  port (d : in bit; q : out bit);
end rpl005_bad;

architecture a of rpl005_bad is
begin
  p : process (d)
  begin
    d <= '0';
    q <= d;
  end process;
end a;
