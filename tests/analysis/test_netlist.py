"""Flattening the elaborated design into the dataflow graph.

The netlist correlates ``Elaborator.records`` with the per-unit
static facts; these tests pin the structural claims everything in
:mod:`repro.analysis.dataflow` depends on — port-map identity
merging, package-signal resolution, top-port marking, and the
combinational/clocked/time-paced process classification.
"""

from repro.analysis import build_netlist
from repro.vhdl.elaborate import Elaborator

from .conftest import compile_source

TWO_INSTANCE_LOOP = """
entity inv is
  port (a : in bit; b : out bit);
end inv;

architecture rtl of inv is
begin
  b <= not a;
end rtl;

entity looptop is
end looptop;

architecture top of looptop is
  component inv
    port (a : in bit; b : out bit);
  end component;
  signal x, y : bit;
begin
  u1 : inv port map (a => x, b => y);
  u2 : inv port map (a => y, b => x);
end top;
"""

CLOCKED_CHAIN = """
entity chain is end chain;
architecture a of chain is
  signal clk : bit := '0';
  signal count : integer := 0;
  signal s1 : integer := 0;
  signal s2 : integer := 0;
begin
  clkgen : process
  begin
    clk <= not clk after 5 ns;
    wait on clk;
  end process;
  reg : process (clk)
  begin
    if clk'event and clk = '1' then
      count <= count + 1;
    end if;
  end process;
  c1 : s1 <= count + 1;
  c2 : s2 <= s1 + 1;
  mon : process (s2)
  begin
    assert s2 >= 0;
  end process;
end a;
"""

PACKAGE_SIGNAL = """
package shared is
  signal bus_s : bit;
end shared;

entity sink is
  port (d : in bit);
end sink;

architecture rtl of sink is
begin
  watch : process (d)
  begin
    assert d = '0' or d = '1';
  end process;
end rtl;

entity holder is
end holder;

use work.shared.all;

architecture top of holder is
  component sink
    port (d : in bit);
  end component;
begin
  u0 : sink port map (d => bus_s);
end top;
"""


def graph_for(source, top):
    compiler = compile_source(source)
    sim = Elaborator(compiler.library).elaborate(top)
    return build_netlist(sim.records)


def by_path(graph):
    return {s.path: s for s in graph.signals}


def proc_by_path(graph):
    return {p.path: p for p in graph.processes}


class TestPortMapMerging:
    def test_child_port_and_parent_local_are_one_node(self):
        graph = graph_for(TWO_INSTANCE_LOOP, "looptop")
        # Two locals in the top, bound into both instances: the
        # flattened graph has exactly two signal nodes, not six.
        assert sorted(s.path for s in graph.signals) == \
            [":looptop:x", ":looptop:y"]

    def test_cross_instance_edges_resolve_through_port_maps(self):
        graph = graph_for(TWO_INSTANCE_LOOP, "looptop")
        signals = by_path(graph)
        x, y = signals[":looptop:x"], signals[":looptop:y"]
        # u1 reads x and drives y; u2 reads y and drives x.
        assert {d.target for d in x.drivers} == {x}
        assert len(x.drivers) == 1 and len(y.drivers) == 1
        edges = {(src.path, dst.path)
                 for src, dst, _ in graph.comb_edges()}
        assert edges == {(":looptop:x", ":looptop:y"),
                         (":looptop:y", ":looptop:x")}

    def test_top_path_and_stats(self):
        graph = graph_for(TWO_INSTANCE_LOOP, "looptop")
        assert graph.top_path == ":looptop"
        stats = graph.stats()
        assert stats["signals"] == 2
        assert stats["processes"] == 2
        assert stats["comb_edges"] == 2


class TestPackageSignals:
    def test_package_signal_is_one_node_across_units(self):
        graph = graph_for(PACKAGE_SIGNAL, "holder")
        signals = by_path(graph)
        (bus,) = [s for path, s in signals.items()
                  if path.endswith("bus_s")]
        # The sink's watch process reads it through the port map.
        assert [p.label for p in bus.readers] == ["watch"]


class TestProcessClassification:
    def test_clock_generator_is_time_paced_not_combinational(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        procs = proc_by_path(graph)
        clkgen = procs[":chain:clkgen"]
        # ``after 5 ns`` => the drive is not zero-delay; the process
        # never reaches a timeout wait, but the delayed drive alone
        # keeps it out of the comb graph.
        assert not clkgen.combinational
        assert not clkgen.is_clocked

    def test_event_guarded_register_is_clocked(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        procs = proc_by_path(graph)
        reg = procs[":chain:reg"]
        assert reg.is_clocked
        assert not reg.combinational
        assert {c.path for c in reg.clocks} == {":chain:clk"}
        # The guarded self-read is a guarded read, not a plain one;
        # the clock itself is classified as a clock, not a data read.
        assert {s.path for s in reg.reads_guarded} == {":chain:count"}

    def test_concurrent_assign_is_combinational(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        combs = [p for p in graph.processes if p.combinational]
        assert sorted(p.label for p in combs) == ["c1", "c2"]
        for proc in combs:
            (drive,) = proc.drives
            assert drive.zero_delay and not drive.guarded

    def test_observer_has_readers_edge_but_no_drives(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        procs = proc_by_path(graph)
        mon = procs[":chain:mon"]
        assert mon.drives == []
        signals = by_path(graph)
        assert mon in signals[":chain:s2"].readers


class TestTopPorts:
    def test_unbound_top_ports_are_marked(self):
        graph = graph_for("""
            entity io_top is
              port (din : in integer; dout : out integer);
            end io_top;
            architecture a of io_top is
            begin
              dout <= din + 1;
            end a;
        """, "io_top")
        flags = {s.path: s.is_top_port for s in graph.signals}
        assert all(flags.values()), flags

    def test_internal_signals_are_not_top_ports(self):
        graph = graph_for(TWO_INSTANCE_LOOP, "looptop")
        assert not any(s.is_top_port for s in graph.signals)
