"""Compile-time / run-time parity for the multi-driver defect.

RPL002 and :meth:`repro.sim.signals.Signal.compute_value` diagnose
the same design error at different pipeline stages; both must cite
the same declaration site, so the user can go from a mid-simulation
crash to the lint finding (and baseline/fix it) without guessing.
"""

import pytest

from repro.analysis import LintEngine
from repro.sim.runtime import RuntimeError_
from repro.vhdl.elaborate import Elaborator

from .conftest import compile_fixture, fixture_path


def simulate_until_error(compiler, top):
    elab = Elaborator(compiler.library)
    sim = elab.elaborate(top)
    with pytest.raises(RuntimeError_) as err:
        sim.run(until_fs=10_000_000)
    return err.value


class TestMultiDriverParity:
    def test_lint_fires_where_simulation_would_crash(self):
        compiler = compile_fixture("rpl002_bad.vhd")
        findings = LintEngine(
            library=compiler.library).lint_library()
        (lint_diag,) = [d for d in findings if d.code == "RPL002"]

        exc = simulate_until_error(compiler, "rpl002_bad")
        assert "no resolution function" in str(exc)

        # Both cite the same declaration span.
        assert exc.span is not None
        assert lint_diag.span == exc.span
        assert exc.span.file == fixture_path("rpl002_bad.vhd")
        assert exc.span.line == 7

    def test_runtime_message_cites_the_declaration(self):
        compiler = compile_fixture("rpl002_bad.vhd")
        exc = simulate_until_error(compiler, "rpl002_bad")
        assert "declared at" in str(exc)
        assert "rpl002_bad.vhd:7" in str(exc)

    def test_resolved_design_passes_both_stages(self):
        compiler = compile_fixture("rpl002_clean.vhd")
        findings = LintEngine(
            library=compiler.library).lint_library()
        assert findings == []
        elab = Elaborator(compiler.library)
        sim = elab.elaborate("rpl002_clean")
        sim.run(until_fs=10_000_000)  # must not raise


class TestKernelSpanPlumbing:
    def test_signal_decl_span_set_by_elaboration(self):
        compiler = compile_fixture("rpl002_bad.vhd")
        elab = Elaborator(compiler.library)
        sim = elab.elaborate("rpl002_bad")
        sig = sim.signal("x")
        assert sig.decl_span is not None
        assert sig.decl_span.line == 7
        assert sig.decl_span.file.endswith("rpl002_bad.vhd")

    def test_process_decl_line_recorded(self):
        compiler = compile_fixture("rpl002_bad.vhd")
        elab = Elaborator(compiler.library)
        sim = elab.elaborate("rpl002_bad")
        lines = {
            p.name.rsplit(":", 1)[-1]: p.decl_line
            for p in sim.kernel.processes
        }
        assert lines["p1"] == 10
        assert lines["p2"] == 16


class TestDesignScopeRaceParity:
    """RPE002 is the design-scope (post-elaboration) twin of RPL002:
    it must agree with the kernel on the pinned corpus designs —
    error exactly where the kernel raises, resolved-bus note exactly
    where the kernel runs clean."""

    @staticmethod
    def corpus_findings(name):
        import os

        from repro.analysis import build_netlist
        from repro.gen.corpus import load_entry
        from repro.vhdl.compiler import Compiler

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "gen", "corpus", name)
        entry = load_entry(os.path.normpath(path))
        compiler = Compiler()
        result = compiler.compile(entry.source, entry.name + ".vhd")
        assert result.ok, result.messages
        elab = Elaborator(compiler.library)
        sim = elab.elaborate(entry.top)
        graph = build_netlist(sim.records)
        findings = LintEngine(
            library=compiler.library,
            select=["RPE002"]).lint_design(graph)
        return entry, compiler, findings

    def test_unresolved_feedback_race_is_an_error(self):
        entry, compiler, findings = self.corpus_findings(
            "multidriver_feedback_stim.vhd")
        assert entry.expect == "sim_error"
        (race,) = findings
        assert race.severity == "error"

        # The kernel crashes on the same signal, citing the same
        # declaration span the static finding is anchored to.
        exc = simulate_until_error(compiler, entry.top)
        assert "no resolution function" in str(exc)
        assert race.span == exc.span

    def test_resolved_same_instant_is_a_note_and_runs(self):
        entry, compiler, findings = self.corpus_findings(
            "resolved_same_instant.vhd")
        assert entry.expect == "ok"
        assert [d.severity for d in findings] == ["note"]
        assert "resolved" in findings[0].message

        elab = Elaborator(compiler.library)
        sim = elab.elaborate(entry.top)
        sim.run(until_fs=entry.until_ns * 1_000_000)  # must not raise

    def test_resolved_bus_behind_config_is_a_note_and_runs(self):
        entry, compiler, findings = self.corpus_findings(
            "config_unit_resolved_bus.vhd")
        assert entry.expect == "ok"
        assert [d.severity for d in findings] == ["note"]

        elab = Elaborator(compiler.library)
        sim = elab.elaborate(entry.top)
        sim.run(until_fs=entry.until_ns * 1_000_000)  # must not raise
