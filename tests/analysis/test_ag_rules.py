"""AG-spec lint rules (RPA001/002/003) over toy grammars and the
compiler's own built-in grammars."""

from repro.ag import AGSpec, INH, SYN
from repro.analysis import LintEngine


def toy_grammar(extra_syn=False):
    g = AGSpec("toy")
    g.terminals("NUM")
    attrs = [("val", SYN), ("env", INH)]
    if extra_syn:
        attrs.append(("aux", SYN))
    g.nonterminal("expr", *attrs)
    p = g.production("num", "expr -> NUM")
    p.rule("expr.val", "NUM.value", "expr.env",
           fn=lambda v, e: v + e.get("bias", 0))
    if extra_syn:
        p.const("expr.aux", 0)
    return g.finish()


def circular_grammar():
    g = AGSpec("circ")
    g.terminals("A")
    g.nonterminal("s", ("x", SYN))
    g.nonterminal("t", ("down", INH), ("up", SYN))
    p = g.production("s_t", "s -> t")
    p.copy("s.x", "t.up")
    p.copy("t.down", "t.up")
    p = g.production("t_a", "t -> A")
    p.copy("t.up", "t.down")
    return g.finish()


class TestRPA001:
    def test_entry_supplied_inherited_is_clean(self):
        findings = LintEngine().lint_ag(
            toy_grammar(), entry_inherited=["env"], goals=["val"])
        assert findings == []

    def test_unsupplied_inherited_is_flagged(self):
        findings = LintEngine(select=["RPA001"]).lint_ag(
            toy_grammar(), goals=["val"])
        assert [d.code for d in findings] == ["RPA001"]
        assert "expr.env" in findings[0].message


class TestRPA002:
    def test_computed_but_never_read_is_flagged(self):
        findings = LintEngine(select=["RPA002"]).lint_ag(
            toy_grammar(extra_syn=True),
            entry_inherited=["env"], goals=["val"])
        assert [d.code for d in findings] == ["RPA002"]
        assert "expr.aux" in findings[0].message

    def test_goal_attributes_are_exempt(self):
        findings = LintEngine(select=["RPA002"]).lint_ag(
            toy_grammar(extra_syn=True),
            entry_inherited=["env"], goals=["val", "aux"])
        assert findings == []

    def test_empty_goals_means_all_root_outputs(self):
        findings = LintEngine(select=["RPA002"]).lint_ag(
            toy_grammar(extra_syn=True), entry_inherited=["env"])
        assert findings == []


class TestRPA003:
    def test_circular_grammar_flagged_as_error(self):
        findings = LintEngine(select=["RPA003"]).lint_ag(
            circular_grammar())
        assert [d.code for d in findings] == ["RPA003"]
        assert findings[0].severity == "error"
        assert "circular" in findings[0].message

    def test_noncircular_grammar_is_clean(self):
        findings = LintEngine(select=["RPA003"]).lint_ag(
            toy_grammar(), entry_inherited=["env"])
        assert findings == []

    def test_reported_cycle_is_deterministic(self):
        messages = {
            LintEngine(select=["RPA003"]).lint_ag(
                circular_grammar())[0].message
            for _ in range(5)
        }
        assert len(messages) == 1


class TestBuiltinGrammars:
    def test_principal_grammar_has_no_rpa001_or_rpa003(self):
        from repro.vhdl.grammar import principal_grammar

        findings = LintEngine(
            select=["RPA001", "RPA003"]).lint_ag(
            principal_grammar(),
            entry_inherited=["ENV", "CC", "LEVEL", "RESULT",
                             "SCOPE"],
            goals=["UNITS", "MSGS"])
        assert findings == []

    def test_expr_grammar_has_no_rpa001_or_rpa003(self):
        from repro.vhdl.expr_grammar import expr_grammar

        findings = LintEngine(
            select=["RPA001", "RPA003"]).lint_ag(
            expr_grammar(), entry_inherited=["ENV", "CTX"],
            goals=["GOAL"])
        assert findings == []
