"""End-to-end `repro lint` CLI flows through ``main(argv, out=...)``.

Exit-code contract: 0 clean, 1 findings, 2 usage/compile trouble —
the same convention CI consumes (see .github/workflows/ci.yml).
"""

import json
import os

import pytest

from repro.cli import main

from .conftest import fixture_path

CLEAN = fixture_path("rpl002_clean.vhd")
BAD = fixture_path("rpl004_bad.vhd")


@pytest.fixture
def run_cli():
    def run(*argv):
        lines = []
        rc = main(list(argv), out=lines.append)
        return rc, "\n".join(str(line) for line in lines)

    return run


class TestExitCodes:
    def test_clean_fixture_exits_zero(self, run_cli):
        rc, text = run_cli("lint", CLEAN)
        assert rc == 0
        assert "no diagnostics" in text
        assert "unit(s) checked" in text

    def test_findings_exit_one(self, run_cli):
        rc, text = run_cli("lint", BAD)
        assert rc == 1
        assert "RPL004" in text and "RPL006" in text

    def test_missing_path_exits_two(self, run_cli):
        rc, text = run_cli("lint", "no_such_file.vhd")
        assert rc == 2

    def test_nothing_to_lint_exits_two(self, run_cli, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc, text = run_cli("lint", str(empty))
        assert rc == 2
        assert "nothing to lint" in text

    def test_compile_error_exits_two(self, run_cli, tmp_path):
        src = tmp_path / "broken.vhd"
        src.write_text("entity oops is\n")
        rc, text = run_cli("lint", str(src))
        assert rc == 2
        assert "fix compile errors first" in text


class TestSelection:
    def test_select_narrows_findings(self, run_cli):
        rc, text = run_cli("lint", "--select", "RPL006", BAD)
        assert rc == 1
        assert "RPL006" in text and "RPL004" not in text

    def test_ignore_all_exits_zero(self, run_cli):
        rc, text = run_cli("lint", "--ignore", "RPL", BAD)
        assert rc == 0


class TestFormats:
    def test_sarif_output_parses(self, run_cli):
        rc, text = run_cli("lint", "--format", "sarif", BAD)
        assert rc == 1
        payload = text[: text.rindex("}") + 1]
        doc = json.loads(payload)
        assert doc["version"] == "2.1.0"
        ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert ids == {"RPL004", "RPL006"}

    def test_sarif_emitted_even_when_clean(self, run_cli):
        rc, text = run_cli("lint", "--format", "sarif", CLEAN)
        assert rc == 0
        payload = text[: text.rindex("}") + 1]
        doc = json.loads(payload)
        assert doc["runs"][0]["results"] == []

    def test_text_format_carets_cite_fixture(self, run_cli):
        rc, text = run_cli("lint", "--format", "text", BAD)
        assert rc == 1
        assert "rpl004_bad.vhd" in text


class TestBaseline:
    def test_write_then_suppress_roundtrip(self, run_cli, tmp_path):
        baseline = str(tmp_path / "lint-baseline.json")
        rc, text = run_cli("lint", "--write-baseline", baseline, BAD)
        assert rc == 0
        assert os.path.exists(baseline)
        with open(baseline) as fh:
            doc = json.load(fh)
        assert doc["schema"] == "repro-lint-baseline/1"
        assert len(doc["findings"]) == 2

        rc, text = run_cli("lint", "--baseline", baseline, BAD)
        assert rc == 0
        assert "2 baseline-suppressed" in text

    def test_new_finding_escapes_baseline(self, run_cli, tmp_path):
        baseline = str(tmp_path / "b.json")
        rc, _ = run_cli("lint", "--write-baseline", baseline,
                        "--select", "RPL006", BAD)
        assert rc == 0
        rc, text = run_cli("lint", "--baseline", baseline, BAD)
        assert rc == 1
        assert "RPL004" in text
        assert "1 baseline-suppressed" in text

    def test_bad_baseline_exits_two(self, run_cli, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "other/9"}))
        rc, text = run_cli("lint", "--baseline", str(bogus), BAD)
        assert rc == 2
        assert "cannot load baseline" in text


class TestAGLint:
    def test_builtin_grammars_are_clean(self, run_cli):
        rc, text = run_cli("lint", "--select", "RPA001",
                           "--select", "RPA003",
                           "--ag", "principal", "--ag", "expr")
        assert rc == 0

    def test_werror_promotes_warnings(self, run_cli):
        rc, text = run_cli("-W", "lint", "--select", "RPL006", BAD)
        assert rc == 1
        assert "-Werror" in text


class TestBuildLint:
    def test_build_with_lint_reports_findings(self, run_cli,
                                              tmp_path):
        root = str(tmp_path / "lib")
        rc, text = run_cli("--root", root, "build", BAD, "--lint")
        assert "RPL004" in text and "RPL006" in text
        assert rc == 1  # lint errors fail the build

    def test_build_lint_clean_is_quiet_success(self, run_cli,
                                               tmp_path):
        root = str(tmp_path / "lib")
        rc, text = run_cli("--root", root, "build", CLEAN, "--lint")
        assert rc == 0
        assert "RPL" not in text
