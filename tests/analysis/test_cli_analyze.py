"""End-to-end `repro analyze` CLI flows through ``main(argv, out=...)``.

Exit-code contract matches `repro lint`: 0 clean (notes never gate),
1 new warning-or-worse findings, 2 compile/elaboration/usage trouble.
With ``--format sarif`` stdout is the SARIF document and nothing
else — CI redirects it straight into an artifact file.
"""

import json
import os

import pytest

from repro.cli import main

LOOP = """
entity inv is
  port (a : in bit; b : out bit);
end inv;
architecture rtl of inv is
begin
  b <= not a;
end rtl;

entity looptop is
end looptop;
architecture top of looptop is
  component inv
    port (a : in bit; b : out bit);
  end component;
  signal x, y : bit;
begin
  u1 : inv port map (a => x, b => y);
  u2 : inv port map (a => y, b => x);
end top;
"""

CLEAN = """
entity clean_top is
  port (din : in integer; dout : out integer);
end clean_top;
architecture a of clean_top is
begin
  dout <= din + 1;
end a;
"""

RACE = """
entity race is end race;
architecture a of race is
  signal x : integer := 0;
begin
  p1 : process
  begin
    x <= 1;
    wait for 10 ns;
  end process;
  p2 : process
  begin
    x <= 2;
    wait for 10 ns;
  end process;
end a;
"""


@pytest.fixture
def run_cli():
    def run(*argv):
        lines = []
        rc = main(list(argv), out=lines.append)
        return rc, "\n".join(str(line) for line in lines)

    return run


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.vhd"
    path.write_text(LOOP)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.vhd"
    path.write_text(CLEAN)
    return str(path)


class TestExitCodes:
    def test_loop_design_exits_one(self, run_cli, loop_file):
        rc, text = run_cli("analyze", loop_file)
        assert rc == 1
        assert "RPE001" in text
        assert ":looptop:x" in text

    def test_clean_design_exits_zero(self, run_cli, clean_file):
        rc, text = run_cli("analyze", clean_file)
        assert rc == 0
        assert "1 design(s) analyzed" in text

    def test_notes_do_not_gate(self, run_cli, tmp_path):
        # A dead signal is worth a note but must not fail the build.
        src = tmp_path / "dead.vhd"
        src.write_text("""
        entity deadtop is end deadtop;
        architecture a of deadtop is
          signal unused_s : integer := 0;
          signal seen : integer := 0;
        begin
          drv : seen <= unused_s + 1;
          obs : process (seen) begin assert seen >= 0; end process;
        end a;
        """)
        rc, text = run_cli("analyze", str(src))
        assert rc == 0
        assert "RPE004" in text

    def test_nothing_to_analyze_exits_two(self, run_cli, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc, text = run_cli("analyze", str(empty))
        assert rc == 2

    def test_compile_error_exits_two(self, run_cli, tmp_path):
        src = tmp_path / "broken.vhd"
        src.write_text("entity oops is\n")
        rc, text = run_cli("analyze", str(src))
        assert rc == 2

    def test_top_flag_merges_files_into_one_design(
            self, run_cli, tmp_path):
        # Split the loop across two files: only the merged design
        # contains the cycle.
        split = LOOP.split("entity looptop", 1)
        (tmp_path / "inv.vhd").write_text(split[0])
        (tmp_path / "top.vhd").write_text(
            "entity looptop" + split[1])
        rc, text = run_cli(
            "analyze", str(tmp_path / "inv.vhd"),
            str(tmp_path / "top.vhd"), "--top", "looptop")
        assert rc == 1
        assert "RPE001" in text


class TestSelectIgnore:
    def test_ignore_silences_the_loop(self, run_cli, loop_file):
        rc, text = run_cli("analyze", loop_file,
                           "--ignore", "RPE001",
                           "--ignore", "RPE004")
        assert rc == 0

    def test_select_runs_only_named_rules(self, run_cli, loop_file):
        rc, text = run_cli("analyze", loop_file,
                           "--select", "RPE004")
        assert rc == 0
        assert "RPE001" not in text


class TestLevelsArtifact:
    def test_artifact_written_for_single_design(
            self, run_cli, clean_file, tmp_path):
        levels = tmp_path / "out" / "levels.json"
        rc, text = run_cli("analyze", clean_file,
                           "--levels-out", str(levels))
        assert rc == 0
        blob = json.loads(levels.read_text())
        assert blob["schema"] == "repro-levels/1"
        assert blob["cyclic"] == []

    def test_cyclic_signals_reported_in_artifact(
            self, run_cli, loop_file, tmp_path):
        levels = tmp_path / "levels.json"
        rc, text = run_cli("analyze", loop_file,
                           "--levels-out", str(levels))
        assert rc == 1
        blob = json.loads(levels.read_text())
        assert blob["cyclic"] == [":looptop:x", ":looptop:y"]
        assert blob["eval_order"] == []

    def test_levels_out_rejects_multiple_designs(
            self, run_cli, loop_file, clean_file, tmp_path):
        rc, text = run_cli("analyze", loop_file, clean_file,
                           "--levels-out",
                           str(tmp_path / "levels.json"))
        assert rc == 2


class TestSarifPurity:
    def test_stdout_is_pure_sarif(self, run_cli, loop_file, capsys):
        rc, text = run_cli("analyze", loop_file,
                           "--format", "sarif")
        assert rc == 1
        # No slicing, no rindex tricks: stdout must parse as-is.
        sarif = json.loads(text)
        rules = {res["ruleId"]
                 for run in sarif["runs"]
                 for res in run["results"]}
        assert "RPE001" in rules
        # The human tail went to stderr instead.
        assert "design(s) analyzed" in capsys.readouterr().err

    def test_sarif_emitted_even_when_clean(self, run_cli, clean_file):
        rc, text = run_cli("analyze", clean_file,
                           "--format", "sarif")
        assert rc == 0
        sarif = json.loads(text)
        (run,) = sarif["runs"]
        assert run["results"] == []


class TestExpectHeaders:
    def test_expected_failure_designs_do_not_gate(
            self, run_cli, tmp_path):
        src = tmp_path / "known_race.vhd"
        src.write_text(
            "-- repro-fuzz: expect=sim_error top=race until_ns=50\n"
            + RACE)
        rc, text = run_cli("analyze", str(src))
        assert rc == 0
        assert "RPE002" in text
        assert "not gating" in text

    def test_expected_rejection_is_skipped(self, run_cli, tmp_path):
        src = tmp_path / "known_bad.vhd"
        src.write_text(
            "-- repro-fuzz: expect=rejected\nentity oops is\n")
        rc, text = run_cli("analyze", str(src))
        assert rc == 0
        assert "expected; skipped" in text
        assert "0 design(s) analyzed" in text


class TestBaselinePortability:
    def test_write_baseline_stores_relative_keys(
            self, run_cli, loop_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        rc, text = run_cli("analyze", loop_file,
                           "--write-baseline", str(baseline))
        assert rc == 0
        blob = json.loads(baseline.read_text())
        assert blob["schema"] == "repro-lint-baseline/1"
        files = {f["file"] for f in blob["findings"]}
        # The finding lives next to the baseline: stored relative.
        assert files == {"loop.vhd"}

    def test_baseline_suppresses_on_reload(
            self, run_cli, loop_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        run_cli("analyze", loop_file,
                "--write-baseline", str(baseline))
        rc, text = run_cli("analyze", loop_file,
                           "--baseline", str(baseline))
        assert rc == 0
        assert "baseline-suppressed" in text

    def test_relative_keys_reanchor_from_any_cwd(
            self, run_cli, loop_file, tmp_path, monkeypatch):
        baseline = tmp_path / "baseline.json"
        run_cli("analyze", loop_file,
                "--write-baseline", str(baseline))
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        rc, text = run_cli("analyze", loop_file,
                           "--baseline", str(baseline))
        assert rc == 0
        assert "baseline-suppressed" in text

    def test_absolute_keys_still_load_with_deprecation_note(
            self, run_cli, loop_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        run_cli("analyze", loop_file,
                "--write-baseline", str(baseline))
        blob = json.loads(baseline.read_text())
        for finding in blob["findings"]:
            finding["file"] = os.path.join(
                str(tmp_path), finding["file"])
        baseline.write_text(json.dumps(blob))
        rc, text = run_cli("analyze", loop_file,
                           "--baseline", str(baseline))
        assert rc == 0
        assert "deprecated" in text
        assert "baseline-suppressed" in text

    def test_foreign_schema_fails_loudly(
            self, run_cli, loop_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"schema": "something-else/9"}')
        rc, text = run_cli("analyze", loop_file,
                           "--baseline", str(baseline))
        assert rc == 2
        assert "cannot load baseline" in text


class TestSimPreflight:
    def test_sim_analyze_refuses_to_start_on_loop(
            self, run_cli, loop_file):
        rc, text = run_cli("sim", loop_file,
                           "--until", "100ns", "--analyze")
        assert rc == 1
        assert "pre-flight" in text
        assert "RPE001" in text

    def test_sim_analyze_runs_clean_design(
            self, run_cli, tmp_path):
        src = tmp_path / "tick.vhd"
        src.write_text("""
        entity tick is end tick;
        architecture a of tick is
          signal clk : bit := '0';
        begin
          gen : process
          begin
            clk <= not clk after 5 ns;
            wait on clk;
          end process;
        end a;
        """)
        rc, text = run_cli("sim", str(src),
                           "--until", "100ns", "--analyze")
        assert rc == 0
        assert "simulation stopped" in text
