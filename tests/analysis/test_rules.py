"""Fixture-driven rule tests: one defective + one clean design per
rule, asserting true-positive and true-negative behaviour."""

import pytest

from repro.analysis import REGISTRY, LintEngine
from repro.diag.diagnostic import CODE_DESCRIPTIONS, ERROR, WARNING

from .conftest import lint_fixture

#: (defective fixture, expected rule ids) — RPL006 designs also
#: trip RPL004 by construction (same wait-less loop).
BAD_FIXTURES = [
    ("rpl001_bad.vhd", {"RPL001"}),
    ("rpl002_bad.vhd", {"RPL002"}),
    ("rpl003_bad.vhd", {"RPL003"}),
    ("rpl004_bad.vhd", {"RPL004", "RPL006"}),
    ("rpl005_bad.vhd", {"RPL005"}),
    ("rpl006_bad.vhd", {"RPL004", "RPL006"}),
]

CLEAN_FIXTURES = [
    "rpl001_clean.vhd",
    "rpl002_clean.vhd",
    "rpl003_clean.vhd",
    "rpl004_clean.vhd",
    "rpl005_clean.vhd",
    "rpl006_clean.vhd",
]


class TestSeededDefects:
    @pytest.mark.parametrize("fixture,expected", BAD_FIXTURES)
    def test_defect_flagged_with_expected_rule(self, fixture,
                                               expected):
        findings = lint_fixture(fixture)
        assert {d.code for d in findings} == expected

    @pytest.mark.parametrize("fixture,expected", BAD_FIXTURES)
    def test_findings_are_anchored(self, fixture, expected):
        for diag in lint_fixture(fixture):
            assert diag.span is not None
            assert diag.span.file.endswith(fixture)
            assert diag.span.line is not None

    @pytest.mark.parametrize("fixture", CLEAN_FIXTURES)
    def test_clean_design_has_zero_findings(self, fixture):
        assert lint_fixture(fixture) == []


class TestRpl003CrossUnit:
    """Signals used only *through an instance port map in another
    unit* are used: RPL003 must look at the whole library, not just
    the declaring unit."""

    def test_port_mapped_package_signal_is_not_unused(self):
        assert lint_fixture("rpl003_xunit_clean.vhd") == []

    def test_truly_unreferenced_package_signal_still_fires(self):
        findings = lint_fixture("rpl003_xunit_bad.vhd")
        assert [(d.code, d.message) for d in findings] == \
            [("RPL003", "signal 'bus_s' is never used")]


class TestRuleDetails:
    def test_rpl001_names_the_missing_signal(self):
        (diag,) = lint_fixture("rpl001_bad.vhd")
        assert "'b_in'" in diag.message
        assert "comb" in diag.message
        # related location points at the declaration
        assert any("b_in" in m for m, _ in diag.related)

    def test_rpl002_cites_the_declaration_line(self):
        (diag,) = lint_fixture("rpl002_bad.vhd")
        assert diag.severity == ERROR
        assert diag.span.line == 7  # "signal x : bit;"
        assert "2 drivers" in diag.message
        # both driving processes appear as related locations
        related = " / ".join(m for m, _ in diag.related)
        assert "p1" in related and "p2" in related

    def test_rpl002_counts_instance_drivers(self, lint_source):
        src = """
entity drv is
  port (o : out bit);
end drv;
architecture a of drv is
begin
  p : process begin o <= '1'; wait; end process;
end a;
entity top is end top;
architecture s of top is
  component drv
    port (o : out bit);
  end component;
  signal net, obs : bit;
begin
  u1 : drv port map (o => net);
  u2 : drv port map (o => net);
  m : process (net) begin obs <= net; end process;
  m2 : process (obs) begin assert obs = '0' or obs = '1';
  end process;
end s;
"""
        findings = lint_source(src)
        assert {d.code for d in findings} == {"RPL002"}
        (diag,) = findings
        assert "net" in diag.message

    def test_rpl005_both_directions(self, lint_source):
        src = """
entity e is
  port (d : in bit; q : out bit);
end e;
architecture a of e is
begin
  p : process (q)
  begin
    d <= '0';
  end process;
end a;
"""
        findings = lint_source(src)
        codes = sorted(d.code for d in findings)
        assert codes == ["RPL005", "RPL005"]
        texts = " / ".join(d.message for d in findings)
        assert "drives port 'd'" in texts
        assert "waits on port 'q'" in texts

    def test_severities(self):
        assert REGISTRY["RPL001"].severity == WARNING
        assert REGISTRY["RPL002"].severity == ERROR
        assert REGISTRY["RPL003"].severity == WARNING
        assert REGISTRY["RPL004"].severity == ERROR
        assert REGISTRY["RPL005"].severity == ERROR
        assert REGISTRY["RPL006"].severity == WARNING


class TestSelection:
    def test_select_prefix(self):
        findings = lint_fixture("rpl004_bad.vhd",
                                select=["RPL004"])
        assert {d.code for d in findings} == {"RPL004"}

    def test_ignore_prefix(self):
        findings = lint_fixture("rpl004_bad.vhd", ignore=["RPL"])
        assert findings == []

    def test_ignore_beats_select(self):
        findings = lint_fixture("rpl004_bad.vhd", select=["RPL"],
                                ignore=["RPL006"])
        assert {d.code for d in findings} == {"RPL004"}


class TestRegistry:
    def test_all_rule_ids_catalogued_for_sarif(self):
        for rule_id, rule in REGISTRY.items():
            assert rule_id in CODE_DESCRIPTIONS
            assert CODE_DESCRIPTIONS[rule_id] == rule.summary

    def test_expected_rules_registered(self):
        assert {"RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                "RPL006", "RPA001", "RPA002",
                "RPA003"} <= set(REGISTRY)

    def test_examples_directory_is_lint_clean(self, lint_source):
        import glob
        import os

        from .conftest import FIXTURES

        examples = os.path.join(os.path.dirname(FIXTURES),
                                "..", "..", "examples")
        for path in sorted(glob.glob(os.path.join(examples,
                                                  "*.vhd"))):
            with open(path) as fh:
                assert lint_source(fh.read(), path) == [], path


class TestMetrics:
    def test_findings_counted_per_rule(self):
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
        lint_fixture("rpl004_bad.vhd", metrics=registry)
        snap = registry.snapshot()
        assert snap["schema"] == "repro-metrics/1"
        metric = snap["metrics"]["lint_findings_total"]
        assert metric["type"] == "counter"
        by_rule = {
            s["labels"]["rule"]: s["value"]
            for s in metric["samples"] if s.get("labels")
        }
        assert by_rule == {"RPL004": 1, "RPL006": 1}
