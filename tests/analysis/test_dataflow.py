"""Design-scope dataflow rules and the levelization pass.

Everything here runs on the flattened :class:`DesignGraph`; the key
property exercised throughout is that these checks see *through*
instance boundaries — per-unit lint on the same sources stays silent
while the design-scope rules fire.
"""

import json

from repro.analysis import LintEngine, build_netlist
from repro.analysis.dataflow import (
    combinational_loops,
    cyclic_signals,
    levelize,
    levels_artifact,
    tarjan_scc,
)
from repro.vhdl.elaborate import Elaborator

from .conftest import compile_source
from .test_netlist import CLOCKED_CHAIN, TWO_INSTANCE_LOOP, graph_for


def design_findings(source, top, select=(), ignore=()):
    compiler = compile_source(source)
    sim = Elaborator(compiler.library).elaborate(top)
    graph = build_netlist(sim.records)
    engine = LintEngine(library=compiler.library,
                        select=select, ignore=ignore)
    return engine.lint_design(graph)


def codes(findings):
    return sorted(d.code for d in findings)


class TestTarjan:
    @staticmethod
    def sccs_of(graph):
        return tarjan_scc(list(graph), lambda n: graph[n])

    def test_two_cycles_and_a_bridge(self):
        graph = {1: [2], 2: [1, 3], 3: [4], 4: [3], 5: []}
        sccs = [sorted(c) for c in self.sccs_of(graph)]
        nontrivial = sorted(c for c in sccs if len(c) > 1)
        assert nontrivial == [[1, 2], [3, 4]]

    def test_self_loop_is_a_component(self):
        sccs = self.sccs_of({1: [1], 2: [1]})
        assert [1] in sccs

    def test_acyclic_graph_has_only_singletons(self):
        graph = {i: [i + 1] for i in range(50)}
        graph[50] = []
        assert all(len(c) == 1 for c in self.sccs_of(graph))

    def test_deep_chain_does_not_recurse(self):
        # Iterative implementation: a 10k-node path must not hit the
        # interpreter recursion limit.
        n = 10_000
        graph = {i: [i + 1] for i in range(n)}
        graph[n] = [0]  # close one giant cycle
        (scc,) = [c for c in self.sccs_of(graph) if len(c) > 1]
        assert len(scc) == n + 1


class TestCombinationalLoops:
    def test_cross_instance_loop_found(self):
        graph = graph_for(TWO_INSTANCE_LOOP, "looptop")
        (loop,) = combinational_loops(graph)
        signals, procs = loop
        assert [s.path for s in signals] == [":looptop:x", ":looptop:y"]
        assert len(procs) == 2
        assert {s.path for s in cyclic_signals(graph)} == \
            {":looptop:x", ":looptop:y"}

    def test_per_unit_lint_is_silent_on_the_same_sources(self):
        # The loop only exists once the port maps are resolved: each
        # unit on its own is a perfectly clean inverter/netlist.
        compiler = compile_source(TWO_INSTANCE_LOOP)
        engine = LintEngine(library=compiler.library)
        unit_findings = engine.lint_library()
        assert "RPE001" not in codes(unit_findings)

    def test_clocked_feedback_is_not_a_loop(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        assert combinational_loops(graph) == []

    def test_rpe001_severity_and_span(self):
        findings = design_findings(TWO_INSTANCE_LOOP, "looptop")
        (loop,) = [d for d in findings if d.code == "RPE001"]
        assert loop.severity == "error"
        assert ":looptop:x" in loop.message
        assert ":looptop:y" in loop.message
        assert loop.related, "cycle-closing processes must be cited"

    def test_rpe001_message_elides_long_cycles(self):
        n = 24
        assigns = "\n".join(
            "  a%d : c%d <= not c%d;" % (i, (i + 1) % n, i)
            for i in range(n))
        decls = ", ".join("c%d" % i for i in range(n))
        source = ("entity ring is end ring;\n"
                  "architecture a of ring is\n"
                  "  signal %s : bit;\nbegin\n%s\nend a;\n"
                  % (decls, assigns))
        findings = design_findings(source, "ring", select=("RPE001",))
        (loop,) = findings
        assert "(%d more)" % (n - 8) in loop.message
        assert len(loop.related) <= 8


RACE = """
entity race is end race;
architecture a of race is
  signal x : integer := 0;
begin
  p1 : process
  begin
    x <= 1;
    wait for 10 ns;
  end process;
  p2 : process
  begin
    x <= 2;
    wait for 10 ns;
  end process;
end a;
"""


class TestStaticRace:
    def test_two_unresolved_drivers_is_an_error(self):
        findings = design_findings(RACE, "race", select=("RPE002",))
        (race,) = findings
        assert race.severity == "error"
        assert "x" in race.message
        assert len(race.related) >= 1

    def test_resolved_signal_downgrades_to_note(self):
        resolved_decl = (
            "function pick (vals : intvec) return integer is\n"
            "  begin\n"
            "    return vals(vals'left);\n"
            "  end pick;\n"
            "  subtype rint is pick integer;\n"
            "  signal x : rint := 0;")
        source = RACE.replace(
            "signal x : integer := 0;", resolved_decl).replace(
            "architecture a of race is",
            "architecture a of race is\n"
            "  type intvec is array (natural range <>) of integer;")
        findings = design_findings(source, "race", select=("RPE002",))
        (race,) = findings
        assert race.severity == "note"
        assert "resolved" in race.message

    def test_single_driver_is_clean(self):
        findings = design_findings(CLOCKED_CHAIN, "chain",
                                   select=("RPE002",))
        assert findings == []


CDC = """
entity cdc is end cdc;
architecture a of cdc is
  signal clka : bit := '0';
  signal clkb : bit := '0';
  signal da : integer := 0;
  signal db : integer := 0;
begin
  gena : process begin clka <= not clka after 3 ns; wait on clka; end process;
  genb : process begin clkb <= not clkb after 7 ns; wait on clkb; end process;
  rega : process (clka)
  begin
    if clka'event and clka = '1' then da <= da + 1; end if;
  end process;
  regb : process (clkb)
  begin
    if clkb'event and clkb = '1' then db <= da + db; end if;
  end process;
end a;
"""


class TestClockDomains:
    def test_cross_clock_transfer_warns(self):
        findings = design_findings(CDC, "cdc", select=("RPE003",))
        (cdc,) = findings
        assert cdc.severity == "warning"
        assert "da" in cdc.message
        assert "clk" in cdc.message

    def test_two_flop_synchronizer_is_exempt(self):
        # A reader whose only data read is the crossing signal and
        # which drives a single target is the first stage of a
        # synchronizer — the standard idiom, not a bug.
        source = CDC.replace("db <= da + db;", "db <= da;")
        findings = design_findings(source, "cdc", select=("RPE003",))
        assert findings == []

    def test_same_domain_transfer_is_clean(self):
        source = CDC.replace("process (clkb)", "process (clka)") \
                    .replace("clkb'event and clkb", "clka'event and clka")
        findings = design_findings(source, "cdc", select=("RPE003",))
        assert findings == []


DEAD_CONE = """
entity cone is end cone;
architecture a of cone is
  signal cst : integer := 3;
  signal alive : integer := 0;
  signal dead : integer := 0;
begin
  drv : process (cst)
  begin
    alive <= cst + 1;
    dead <= cst - 1;
  end process;
  obs : process (alive)
  begin
    assert alive >= 0;
  end process;
end a;
"""


class TestDeadCone:
    def test_dead_and_constant_signals_noted(self):
        findings = design_findings(DEAD_CONE, "cone",
                                   select=("RPE004",))
        by_code = {}
        for d in findings:
            by_code.setdefault(d.code, []).append(d.message)
        messages = by_code["RPE004"]
        assert any("dead cone" in m and ":cone:dead" in m
                   for m in messages)
        assert any("statically" in m and ":cone:cst" in m
                   for m in messages)
        assert not any(":cone:alive" in m for m in messages)
        assert all(d.severity == "note" for d in findings)

    def test_top_ports_are_live_by_definition(self):
        source = """
        entity io is
          port (din : in integer; dout : out integer);
        end io;
        architecture a of io is
        begin
          dout <= din + 1;
        end a;
        """
        findings = design_findings(source, "io", select=("RPE004",))
        assert findings == []


class TestLevelization:
    def test_levels_topologically_sort_the_comb_edges(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        levels, order, cyclic = levelize(graph)
        assert cyclic == []
        for src, dst, _proc in graph.comb_edges():
            assert levels[dst] > levels[src], (src.path, dst.path)

    def test_chain_levels_and_eval_order(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        levels, order, _ = levelize(graph)
        by_path = {s.path: lvl for s, lvl in levels.items()}
        assert by_path[":chain:count"] == 0
        assert by_path[":chain:s1"] == 1
        assert by_path[":chain:s2"] == 2
        assert [p.label for p in order] == ["c1", "c2"]

    def test_cyclic_signals_are_quarantined(self):
        graph = graph_for(TWO_INSTANCE_LOOP, "looptop")
        levels, order, cyclic = levelize(graph)
        assert {s.path for s in cyclic} == \
            {":looptop:x", ":looptop:y"}
        assert order == []
        assert all(s in cyclic or lvl >= 0
                   for s, lvl in levels.items())

    def test_levels_artifact_schema_and_roundtrip(self):
        graph = graph_for(CLOCKED_CHAIN, "chain")
        artifact = levels_artifact(graph)
        # Must be JSON-serializable as produced.
        blob = json.loads(json.dumps(artifact))
        assert blob["schema"] == "repro-levels/1"
        assert blob["top"] == ":chain"
        assert blob["cyclic"] == []
        assert blob["signals"] == 4
        assert blob["processes"] == 5
        level_of = {}
        for entry in blob["levels"]:
            for path in entry["signals"]:
                level_of[path] = entry["level"]
        assert level_of[":chain:s2"] == 2
        assert blob["eval_order"] == [":chain:c1", ":chain:c2"]


class TestEngineIntegration:
    def test_lint_design_runs_all_rules_with_spans(self):
        findings = design_findings(TWO_INSTANCE_LOOP, "looptop")
        assert "RPE001" in codes(findings)
        # Every design-scope finding is anchored to a source span so
        # renderers (and SARIF) can point at the declaration.
        assert all(d.span is not None for d in findings)
        assert {d.severity for d in findings} == {"error", "note"}

    def test_select_and_ignore_apply_to_design_scope(self):
        only = design_findings(TWO_INSTANCE_LOOP, "looptop",
                               select=("RPE001",))
        assert codes(only) == ["RPE001"]
        none = design_findings(TWO_INSTANCE_LOOP, "looptop",
                               ignore=("RPE001", "RPE004"))
        assert codes(none) == []
