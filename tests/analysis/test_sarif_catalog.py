"""SARIF 2.1.0 shape tests for lint output: the rules catalog must
carry per-rule metadata and results must reference it by index."""

import json

from repro.diag.render import render_sarif, sarif_run

from .conftest import lint_fixture


def sarif_for(fixture):
    findings = lint_fixture(fixture)
    assert findings
    return json.loads(render_sarif(findings))


class TestSarifShape:
    def test_top_level_shape(self):
        doc = sarif_for("rpl002_bad.vhd")
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        assert "tool" in run and "results" in run
        assert run["tool"]["driver"]["name"]

    def test_rules_catalog_has_lint_metadata(self):
        doc = sarif_for("rpl004_bad.vhd")
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        by_id = {r["id"]: r for r in rules}
        assert set(by_id) == {"RPL004", "RPL006"}
        # per-rule metadata: the registered summary, not the bare id
        for rule_id, rule in by_id.items():
            text = rule["shortDescription"]["text"]
            assert text and text != rule_id
        assert "wait" in by_id["RPL004"]["shortDescription"]["text"]

    def test_results_reference_catalog_by_index(self):
        doc = sarif_for("rpl004_bad.vhd")
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]

    def test_levels_follow_severity(self):
        doc = sarif_for("rpl004_bad.vhd")
        levels = {r["ruleId"]: r["level"]
                  for r in doc["runs"][0]["results"]}
        assert levels["RPL004"] == "error"
        assert levels["RPL006"] == "warning"

    def test_locations_are_physical_and_anchored(self):
        doc = sarif_for("rpl002_bad.vhd")
        (result,) = doc["runs"][0]["results"]
        (loc,) = result["locations"]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uri"].endswith(
            "rpl002_bad.vhd")
        assert phys["region"]["startLine"] == 7
        # the two driving processes are related locations
        assert len(result["relatedLocations"]) == 2

    def test_sarif_run_merges_compiler_and_lint_codes(self):
        """Lint findings share the catalog path with compiler
        diagnostics — one run can carry both code families."""
        from repro.diag import Diagnostic

        findings = lint_fixture("rpl003_bad.vhd")
        findings.append(
            Diagnostic("PARSE001", "error", "synthetic parse error"))
        doc = sarif_run(findings)
        ids = {r["id"]
               for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert ids == {"RPL003", "PARSE001"}
