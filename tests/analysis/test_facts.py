"""The dataflow fact extractor over generated models."""

from repro.analysis import extract_unit_facts

from .conftest import compile_source

SRC = """
entity facts_demo is
  port (clk : in bit; dout : out bit);
end facts_demo;

architecture rtl of facts_demo is
  signal d, q : bit;
begin
  reg : process (clk)
  begin
    if clk'event and clk = '1' then
      q <= d;
    end if;
  end process;

  drive : process
  begin
    d <= '1' after 3 ns;
    wait for 20 ns;
    wait;
  end process;

  outp : process (q)
  begin
    dout <= q;
  end process;
end rtl;
"""


def arch_facts(src=SRC, key="rtl(facts_demo)"):
    compiler = compile_source(src, "facts_demo.vhd")
    node = compiler.library._units[("work", key)]
    return extract_unit_facts(node)


class TestObjectTable:
    def test_signals_and_ports_with_lines(self):
        facts = arch_facts()
        kinds = {o.name: o.kind for o in facts.objects.values()}
        assert kinds == {"clk": "port", "dout": "port",
                         "d": "signal", "q": "signal"}
        modes = {o.name: o.mode for o in facts.objects.values()
                 if o.kind == "port"}
        assert modes == {"clk": "in", "dout": "out"}
        lines = {o.name: o.line for o in facts.objects.values()}
        assert lines["clk"] == 3
        assert lines["d"] == 7  # "signal d, q : bit;"
        assert all(isinstance(v, int) for v in lines.values())

    def test_file_attribution(self):
        facts = arch_facts()
        assert facts.file == "facts_demo.vhd"

    def test_resolution_detection(self, ):
        src = """
package p is
  function any1 (vals : bit_vector) return bit;
end p;
package body p is
  function any1 (vals : bit_vector) return bit is
  begin
    return '1';
  end any1;
end p;
entity e is end e;
use work.p.all;
architecture a of e is
  signal r : any1 bit;
  signal plain : bit;
begin
  p1 : process begin r <= '1'; plain <= '0'; wait; end process;
  m : process (r, plain) begin assert r = '1'; end process;
end a;
"""
        facts = arch_facts(src, key="a(e)")
        by_name = {o.name: o for o in facts.objects.values()}
        assert by_name["r"].resolved
        assert not by_name["plain"].resolved


class TestProcessFacts:
    def test_sensitivity_and_guarded_reads(self):
        facts = arch_facts()
        reg = [p for p in facts.processes if p.label == "reg"][0]
        names = lambda pys: {facts.objects[n].name for n in pys}
        assert names(reg.sensitivity) == {"clk"}
        # the data read sits under the clk'event guard...
        assert names(reg.guarded_reads) == {"d"}
        # ...while the clock-level test reads clk plainly.
        assert names(reg.plain_reads) == {"clk"}
        assert names(reg.attr_uses) == {"clk"}
        assert names(reg.drives) == {"q"}

    def test_wait_topology(self):
        facts = arch_facts()
        drive = [p for p in facts.processes
                 if p.label == "drive"][0]
        assert drive.sensitivity is None
        assert len(drive.waits) == 2
        timed, forever = drive.waits
        assert timed.has_timeout and not timed.forever
        assert forever.forever

    def test_sensitivity_process_gets_trailing_wait(self):
        facts = arch_facts()
        outp = [p for p in facts.processes if p.label == "outp"][0]
        # the compiler ends sensitivity processes with wait-on-list
        assert outp.waits
        assert {facts.objects[n].name
                for n in outp.waits[-1].signals} == {"q"}

    def test_waitless_loop_and_unreachable(self):
        src = """
entity e is end e;
architecture a of e is
  signal x : bit;
begin
  spin : process
  begin
    wait for 1 ns;
    loop
      x <= not x;
    end loop;
    x <= '0';
  end process;
  m : process (x) begin assert x = '0' or x = '1'; end process;
end a;
"""
        facts = arch_facts(src, key="a(e)")
        spin = [p for p in facts.processes if p.label == "spin"][0]
        assert spin.waitless_loops == 1
        assert spin.unreachable_stmts == 1


class TestInstanceFacts:
    def test_connections(self):
        src = """
entity leaf is
  port (i : in bit; o : out bit);
end leaf;
architecture a of leaf is
begin
  p : process (i) begin o <= i; end process;
end a;
entity top is end top;
architecture s of top is
  component leaf
    port (i : in bit; o : out bit);
  end component;
  signal a, b : bit;
begin
  u1 : leaf port map (i => a, o => b);
  m : process (b) begin a <= b; end process;
end s;
"""
        facts = arch_facts(src, key="s(top)")
        assert len(facts.instances) == 1
        inst = facts.instances[0]
        assert inst.label == "u1"
        assert inst.component == "leaf"
        conn = {f: facts.objects[py].name
                for f, py in inst.connections.items()}
        assert conn == {"i": "a", "o": "b"}


class TestRobustness:
    def test_entity_without_code_yields_empty_facts(self):
        compiler = compile_source(SRC, "facts_demo.vhd")
        entity = compiler.library._units[("work", "facts_demo")]
        facts = extract_unit_facts(entity)
        assert facts.objects == {}
        assert facts.processes == []

    def test_garbage_py_source_is_tolerated(self):
        class FakeUnit:
            name = "broken"
            py_source = "def elaborate(ctx:\n  oops"
            source_file = "x.vhd"

        facts = extract_unit_facts(FakeUnit())
        assert facts.objects == {}
