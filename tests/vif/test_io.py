"""Tests for VIF serialization: write, read, foreign references, dump."""

import json

import pytest

from repro.vif.core import VIFError
from repro.vif.io import VIFReader, VIFWriter, dump_unit
from repro.vif.nodes import (
    ArraySubtype,
    ArrayType,
    EnumType,
    IndexRange,
    IntegerType,
    ObjectEntry,
    PackageUnit,
)


def fresh_types():
    bit = EnumType(name="bit", literals=["'0'", "'1'"])
    integer = IntegerType(name="integer", low=-100, high=100)
    return bit, integer


class TestWriter:
    def test_roundtrip_single_unit(self):
        bit, integer = fresh_types()
        payload = VIFWriter("work", "u").write({"bit": bit, "i": integer})
        store = {("work", "u"): payload}
        reader = VIFReader(lambda l, u: store.get((l, u)))
        roots = reader.read_unit("work", "u")
        assert roots["bit"].literals == ["'0'", "'1'"]
        assert roots["i"].high == 100
        assert roots["bit"].VIF_KIND == "EnumType"

    def test_payload_is_json_serializable(self):
        bit, _ = fresh_types()
        payload = VIFWriter("work", "u").write({"bit": bit})
        json.dumps(payload)

    def test_nested_refs_discovered(self):
        bit, integer = fresh_types()
        rng = IndexRange(left=3, direction="downto", right=0)
        arr = ArrayType(name="v", index_type=integer, element_type=bit,
                        index_range=rng)
        payload = VIFWriter("work", "u").write({"arr": arr})
        kinds = [k for k, _ in payload["nodes"]]
        assert set(kinds) == {"ArrayType", "IntegerType", "EnumType",
                              "IndexRange"}

    def test_ownership_assigned_after_write(self):
        bit, _ = fresh_types()
        assert bit._vif_home is None
        VIFWriter("work", "u").write({"bit": bit})
        assert bit._vif_home[0:2] == ("work", "u")

    def test_rewrite_same_unit_reowns(self):
        bit, _ = fresh_types()
        VIFWriter("work", "u").write({"bit": bit})
        payload2 = VIFWriter("work", "u").write({"bit": bit})
        # Still inline, not foreign.
        assert payload2["nodes"]
        assert payload2["depends"] == []

    def test_non_jsonable_data_rejected(self):
        bad = EnumType(name="x", literals=[object()])
        with pytest.raises(VIFError):
            VIFWriter("work", "u").write({"x": bad})


class TestForeignReferences:
    def make_two_units(self):
        bit, integer = fresh_types()
        p1 = VIFWriter("std2", "base").write({"bit": bit, "i": integer})
        obj = ObjectEntry(name="s", obj_class="signal", vtype=bit,
                          py="s_s")
        p2 = VIFWriter("work", "top").write({"obj": obj})
        return bit, p1, p2

    def test_foreign_ref_recorded(self):
        bit, p1, p2 = self.make_two_units()
        assert ["std2", "base"] in [list(d) for d in p2["depends"]]
        enc = p2["nodes"][0][1]["vtype"]
        assert "$f" in enc

    def test_foreign_resolution_shares_identity(self):
        """'resolving any nested foreign references' — and sharing,
        because foreign refs are pointers into the owning unit."""
        bit, p1, p2 = self.make_two_units()
        store = {("std2", "base"): p1, ("work", "top"): p2}
        reader = VIFReader(lambda l, u: store.get((l, u)))
        top = reader.read_unit("work", "top")
        base = reader.read_unit("std2", "base")
        assert top["obj"].vtype is base["bit"]

    def test_transitive_foreign_loading(self):
        bit, integer = fresh_types()
        p1 = VIFWriter("l1", "a").write({"bit": bit})
        rng = IndexRange(left=7, direction="downto", right=0)
        bv = ArrayType(name="bv", index_type=integer, element_type=bit)
        p2 = VIFWriter("l2", "b").write({"bv": bv, "i": integer})
        sub = ArraySubtype(name="byte", base_type=bv, index_range=rng)
        p3 = VIFWriter("l3", "c").write({"byte": sub})
        store = {("l1", "a"): p1, ("l2", "b"): p2, ("l3", "c"): p3}
        reader = VIFReader(lambda l, u: store.get((l, u)))
        c = reader.read_unit("l3", "c")
        # c -> b -> a chain resolves.
        assert c["byte"].element_type.literals == ["'0'", "'1'"]

    def test_missing_unit_raises(self):
        reader = VIFReader(lambda l, u: None)
        with pytest.raises(VIFError):
            reader.read_unit("nope", "missing")


class TestDump:
    def test_human_readable_form(self):
        bit, integer = fresh_types()
        payload = VIFWriter("work", "u").write({"bit": bit, "i": integer})
        text = dump_unit(payload)
        assert "VIF unit work.u" in text
        assert "EnumType" in text
        assert ".literals" in text

    def test_dump_shows_foreign_refs(self):
        bit, _ = fresh_types()
        VIFWriter("other", "o").write({"bit": bit})
        obj = ObjectEntry(name="x", obj_class="signal", vtype=bit)
        payload = VIFWriter("work", "u").write({"obj": obj})
        text = dump_unit(payload)
        assert "@other.o#" in text


class TestGeneratedModule:
    def test_registry_covers_schema(self):
        from repro.vif import nodes

        registry = nodes.registry()
        assert "EnumType" in registry
        cls, new, write, read, dump = registry["EnumType"]
        node = new(name="t", literals=["a"])
        assert node.name == "t"

    def test_generated_source_is_substantial(self):
        from repro.vif import nodes

        src = nodes.generated_source()
        assert len(src.splitlines()) > 500
        assert "def write_EnumType" in src
        assert "def read_ArchUnit" in src
        assert "def dump_PackageUnit" in src

    def test_unit_nodes_have_unit_behavior(self):
        pkg = PackageUnit(name="p", decls=[])
        assert pkg.entry_kind == "package"
        assert pkg.visible_decls() == []
