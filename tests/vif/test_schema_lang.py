"""Tests for the declarative VIF schema notation and its AG processor."""

import pytest

from repro.vif.core import VIFError
from repro.vif.schema_lang import parse_schema, schema_statistics


GOOD = """
-- a node with a mixin
node Point mixin repro.vhdl.vtypes:IndexRangeBehavior
  x : int
  y : int
end

node Bag
  items : list
  label : str
end
"""


class TestParsing:
    def test_parses_declarations(self):
        decls = parse_schema(GOOD)
        assert [d.kind for d in decls] == ["Point", "Bag"]
        assert decls[0].mixin == "repro.vhdl.vtypes:IndexRangeBehavior"
        assert decls[1].mixin is None
        assert [f.name for f in decls[0].fields] == ["x", "y"]
        assert [f.ftype for f in decls[1].fields] == ["list", "str"]

    def test_comments_ignored(self):
        decls = parse_schema("-- nothing\nnode N\n  a : int\nend\n")
        assert len(decls) == 1

    def test_empty_fields_allowed(self):
        decls = parse_schema("node Empty\nend")
        assert decls[0].fields == []

    def test_duplicate_kind_rejected(self):
        with pytest.raises(VIFError) as info:
            parse_schema("node A\nend\nnode A\nend")
        assert "declared twice" in str(info.value)

    def test_duplicate_field_rejected(self):
        with pytest.raises(VIFError):
            parse_schema("node A\n  x : int\n  x : str\nend")

    def test_unknown_field_type_rejected(self):
        with pytest.raises(VIFError):
            parse_schema("node A\n  x : banana\nend")

    def test_line_numbers_recorded(self):
        decls = parse_schema("\n\nnode Late\nend")
        assert decls[0].line == 3

    def test_processor_is_an_attribute_grammar(self):
        """The paper's footnote: the VIF description program 'is also
        written as an AG'."""
        stats = schema_statistics()
        assert stats.productions >= 6
        assert stats.implicit_rules > 0


class TestRealSchema:
    def test_shipped_schema_parses(self):
        from repro.vif.nodes import schema_text

        decls = parse_schema(schema_text())
        kinds = {d.kind for d in decls}
        assert "EnumType" in kinds
        assert "ArchUnit" in kinds
        assert "ObjectEntry" in kinds

    def test_all_mixins_resolve(self):
        import importlib

        from repro.vif.nodes import schema_text

        for decl in parse_schema(schema_text()):
            if decl.mixin:
                module, cls = decl.mixin.split(":")
                assert hasattr(importlib.import_module(module), cls)
