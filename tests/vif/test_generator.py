"""Tests for the VIF code generator (the paper's generated
declarations + manipulation code)."""

import pytest

from repro.vif.core import Field, VIFError
from repro.vif.generator import generate_from_text, generate_source
from repro.vif.schema_lang import parse_schema


SCHEMA = """
node Leaf
  name : str
  size : int
end

node Branch mixin repro.vhdl.vtypes:IndexRangeBehavior
  left      : data
  direction : str
  right     : data
  kids      : list
end
"""


def load(schema_text):
    namespace = {}
    exec(compile(generate_from_text(schema_text), "<gen>", "exec"),
         namespace)
    return namespace


class TestGeneratedClasses:
    def test_slots_and_defaults(self):
        ns = load(SCHEMA)
        leaf = ns["Leaf"]()
        assert leaf.name == "" and leaf.size == 0
        assert not hasattr(leaf, "__dict__") or True  # mixins may add
        leaf2 = ns["Leaf"](name="x", size=3)
        assert (leaf2.name, leaf2.size) == ("x", 3)

    def test_list_fields_are_fresh(self):
        ns = load(SCHEMA)
        b1 = ns["Branch"]()
        b2 = ns["Branch"]()
        b1.kids.append("k")
        assert b2.kids == []

    def test_mixin_behavior_inherited(self):
        ns = load(SCHEMA)
        b = ns["Branch"](left=3, direction="to", right=5)
        assert b.length() == 3  # IndexRangeBehavior.length

    def test_all_four_function_families(self):
        src = generate_from_text(SCHEMA)
        for family in ("new_", "write_", "read_", "dump_"):
            assert family + "Leaf" in src
            assert family + "Branch" in src

    def test_registry_entries(self):
        ns = load(SCHEMA)
        registry = ns["REGISTRY"]
        assert set(registry) == {"Leaf", "Branch"}
        cls, new, write, read, dump = registry["Leaf"]
        node = new(name="n", size=1)
        encoded = write(node, lambda v, t: v)
        assert encoded == {"name": "n", "size": 1}

    def test_dump_functions(self):
        ns = load(SCHEMA)
        cls, new, write, read, dump = ns["REGISTRY"]["Leaf"]
        rows = dump(new(name="n", size=2), lambda v, t: repr(v))
        assert ("name", "'n'") in rows

    def test_read_roundtrip(self):
        ns = load(SCHEMA)
        cls, new, write, read, dump = ns["REGISTRY"]["Leaf"]
        blank = cls.__new__(cls)
        blank._vif_home = None
        filled = read(blank, {"name": "z", "size": 9},
                      lambda v, t: v)
        assert (filled.name, filled.size) == ("z", 9)

    def test_empty_schema_rejected(self):
        with pytest.raises(VIFError):
            generate_from_text("-- nothing here\n")


class TestFieldDescriptors:
    def test_defaults_by_type(self):
        assert Field("x", "str").default() == ""
        assert Field("x", "int").default() == 0
        assert Field("x", "bool").default() is False
        assert Field("x", "data").default() is None
        assert Field("x", "ref").default() is None
        assert Field("x", "list").default() == []

    def test_unknown_type_rejected(self):
        with pytest.raises(VIFError):
            Field("x", "tuple")

    def test_generated_source_header_marks_generated(self):
        decls = parse_schema(SCHEMA)
        src = generate_source(decls)
        assert "GENERATED" in src
