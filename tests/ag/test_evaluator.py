"""Tests for the dynamic evaluator, and agreement with the static one."""

import pytest

from repro.ag import (
    AGSpec,
    CircularityError,
    DynamicEvaluator,
    EvaluationError,
    StaticEvaluator,
    SYN,
    INH,
    Token,
)

from .calc_fixture import make_compiled, make_lexer


@pytest.fixture(scope="module")
def calc():
    return make_compiled()


@pytest.fixture(scope="module")
def lexer():
    return make_lexer()


class TestDynamicEvaluation:
    def test_arithmetic(self, calc, lexer):
        out = calc.run(lexer.scan("2 + 3 * (4 + 5)"), inherited={"env": {}})
        assert out["val"] == 29

    def test_subtraction_left_assoc(self, calc, lexer):
        out = calc.run(lexer.scan("10 - 3 - 2"), inherited={"env": {}})
        assert out["val"] == 5

    def test_inherited_environment_reaches_leaves(self, calc, lexer):
        out = calc.run(
            lexer.scan("x * y + 1"), inherited={"env": {"x": 6, "y": 7}}
        )
        assert out["val"] == 43

    def test_merge_class_counts_leaves(self, calc, lexer):
        out = calc.run(lexer.scan("1 + 2 * (3 - x)"),
                       inherited={"env": {"x": 0}})
        assert out["NODES"] == 4

    def test_unit_element_on_leafless_derivation(self):
        g = AGSpec("u")
        g.terminals("A")
        g.attr_class("N", SYN, merge=lambda a, b: a + b, unit=7)
        g.nonterminal("s", "N")
        g.production("s_a", "s -> A")
        out = g.finish().run([Token("A", "a")])
        assert out["N"] == 7

    def test_missing_root_inherited_raises(self, calc, lexer):
        # The expression must actually demand env — evaluation is lazy.
        with pytest.raises(EvaluationError) as info:
            calc.run(lexer.scan("x + 1"))
        assert "env" in str(info.value)

    def test_rule_exception_wrapped_with_context(self, calc, lexer):
        with pytest.raises(EvaluationError) as info:
            calc.run(lexer.scan("missing + 1"), inherited={"env": {}})
        assert "f_id" in str(info.value)

    def test_memoization_single_evaluation_per_instance(self, calc, lexer):
        tree = calc.parse(lexer.scan("1 + 2"))
        ev = DynamicEvaluator(calc, {"env": {}})
        ev.goal_attributes(tree)
        first = ev.evaluations
        ev.goal_attributes(tree)
        assert ev.evaluations == first

    def test_deep_tree_no_recursion_error(self, calc, lexer):
        text = "1" + " + 1" * 3000
        out = calc.run(lexer.scan(text), inherited={"env": {}})
        assert out["val"] == 3001


class TestCircularity:
    def make_circular(self):
        g = AGSpec("circ")
        g.terminals("A")
        g.nonterminal("s", ("x", SYN))
        g.nonterminal("t", ("down", INH), ("up", SYN))
        p = g.production("s_t", "s -> t")
        p.copy("s.x", "t.up")
        p.copy("t.down", "t.up")  # down depends on up ...
        p = g.production("t_a", "t -> A")
        p.copy("t.up", "t.down")  # ... and up depends on down: a cycle
        return g.finish()

    def test_dynamic_detects_instance_cycle(self):
        compiled = self.make_circular()
        with pytest.raises(CircularityError) as info:
            compiled.run([Token("A", "a")])
        assert info.value.cycle

    def test_dependency_analysis_detects_cycle(self):
        compiled = self.make_circular()
        from repro.ag.dependency import DependencyAnalysis

        with pytest.raises(CircularityError):
            DependencyAnalysis(compiled).check_noncircular()


class TestStaticAgreement:
    @pytest.mark.parametrize(
        "text",
        [
            "1",
            "1 + 2",
            "2 * 3 + 4",
            "(1 + 2) * (3 + 4)",
            "x + y * x",
            "10 - (2 - 1)",
        ],
    )
    def test_static_matches_dynamic(self, calc, lexer, text):
        env = {"x": 5, "y": 11}
        t1 = calc.parse(lexer.scan(text))
        t2 = calc.parse(lexer.scan(text))
        dyn = DynamicEvaluator(calc, {"env": env}).goal_attributes(t1)
        stat = StaticEvaluator(calc, {"env": env}).goal_attributes(t2)
        assert dyn == stat

    def test_static_deep_tree(self, calc, lexer):
        text = "1" + " + 1" * 2500
        tree = calc.parse(lexer.scan(text))
        out = StaticEvaluator(calc, {"env": {}}).goal_attributes(tree)
        assert out["val"] == 2501


class TestMultiVisitGrammar:
    """A two-visit AG: the classic 'global count distributed back' shape.

    Visit 1 synthesizes a leaf count; the root then feeds it back down
    as an inherited attribute; visit 2 synthesizes labels that use it.
    This is the shape of the paper's symbol-table pattern (collect
    declarations, then distribute the environment).
    """

    def make(self):
        g = AGSpec("two_visit")
        g.terminals("A")
        g.nonterminal("root", ("out", SYN))
        g.nonterminal(
            "list", ("count", SYN), ("total", INH), ("labels", SYN)
        )
        p = g.production("root_list", "root -> list")
        p.copy("list.total", "list.count")
        p.copy("root.out", "list.labels")
        p = g.production("list_more", "list -> list0 A")
        p.rule("list0.count", "list1.count", fn=lambda c: c + 1)
        p.copy("list1.total", "list0.total")
        p.rule(
            "list0.labels", "list1.labels", "list0.total",
            fn=lambda ls, t: ls + [t],
        )
        p = g.production("list_one", "list -> A")
        p.const("list.count", 1)
        p.rule("list.labels", "list.total", fn=lambda t: [t])
        return g.finish()

    def test_dynamic(self):
        compiled = self.make()
        out = compiled.run([Token("A", "a")] * 4)
        assert out["out"] == [4, 4, 4, 4]

    def test_static(self):
        compiled = self.make()
        tree = compiled.parse([Token("A", "a")] * 4)
        out = StaticEvaluator(compiled).goal_attributes(tree)
        assert out["out"] == [4, 4, 4, 4]

    def test_visit_count_is_two(self):
        compiled = self.make()
        assert compiled.analyze().visits["list"] == 2
        assert compiled.statistics().max_visits == 2
