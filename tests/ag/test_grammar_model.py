"""Tests for the grammar model: symbols, productions, sanity checks,
and the spec layer's validation."""

import pytest

from repro.ag import AGSpec, GrammarError, SYN
from repro.ag.grammar import Grammar


class TestGrammar:
    def test_symbol_interning(self):
        g = Grammar("g")
        a1 = g.terminal("A")
        a2 = g.terminal("A")
        assert a1 is a2

    def test_kind_conflict_rejected(self):
        g = Grammar("g")
        g.terminal("A")
        with pytest.raises(GrammarError):
            g.nonterminal("A")

    def test_duplicate_label_rejected(self):
        g = Grammar("g")
        g.terminal("A")
        g.add_production("p", "X", ["A"])
        with pytest.raises(GrammarError):
            g.add_production("p", "X", ["A"])

    def test_start_defaults_to_first_lhs(self):
        g = Grammar("g")
        g.terminal("A")
        g.add_production("p", "X", ["A"])
        assert g.start.name == "X"

    def test_check_reports_undefined_nonterminal(self):
        g = Grammar("g")
        g.terminal("A")
        g.add_production("p", "X", ["Y"])  # Y never defined
        warnings = g.check()
        assert any("Y" in w and "no productions" in w
                   for w in warnings)

    def test_check_reports_unreachable(self):
        g = Grammar("g")
        g.terminal("A")
        g.add_production("p", "X", ["A"])
        g.add_production("q", "Z", ["A"])  # unreachable from X
        warnings = g.check()
        assert any("Z" in w and "unreachable" in w for w in warnings)

    def test_production_str(self):
        g = Grammar("g")
        g.terminal("A")
        p = g.add_production("p", "X", [])
        assert "<empty>" in str(p)


class TestSpecValidation:
    def test_undeclared_rhs_symbol_rejected(self):
        g = AGSpec("s")
        g.nonterminal("x")
        with pytest.raises(GrammarError) as info:
            g.production("p", "x -> MYSTERY")
        assert "MYSTERY" in str(info.value)

    def test_occurrence_index_stripping(self):
        g = AGSpec("s")
        g.terminals("A")
        g.nonterminal("e", ("v", SYN))
        p = g.production("p", "e -> e0 A e1")
        assert [s.name for s in p.production.rhs] == ["e", "A", "e"]

    def test_finish_is_idempotent(self):
        g = AGSpec("s")
        g.terminals("A")
        g.nonterminal("x", ("v", SYN))
        g.production("p", "x -> A").const("x.v", 1)
        c1 = g.finish()
        c2 = g.finish()
        assert c1 is c2

    def test_bad_rule_target_rejected(self):
        from repro.ag import AttributeError_

        g = AGSpec("s")
        g.terminals("A")
        g.nonterminal("x", ("v", SYN))
        g.nonterminal("y", ("w", SYN))
        p = g.production("p", "x -> y")
        with pytest.raises(AttributeError_):
            # Defining a *synthesized* attribute of a child is illegal.
            p.const("y.w", 1)

    def test_terminal_lexical_attr_whitelist(self):
        from repro.ag import AttributeError_

        g = AGSpec("s")
        g.terminals("A")
        g.nonterminal("x", ("v", SYN))
        p = g.production("p", "x -> A")
        with pytest.raises(AttributeError_) as info:
            p.rule("x.v", "A.nonsense", fn=lambda v: v)
        assert "lexical" in str(info.value)


class TestThreeVisitGrammar:
    """A grammar needing three visits: collect, distribute, then a
    second feedback round — near the paper's 'went from four visits to
    five to three' story."""

    def test_three_visits(self):
        from repro.ag import INH, StaticEvaluator, SYN, Token

        g = AGSpec("three_visit")
        g.terminals("A")
        g.nonterminal("root", ("out", SYN))
        g.nonterminal(
            "l", ("n", SYN), ("total", INH), ("scaled", SYN),
            ("bias", INH), ("final", SYN))
        p = g.production("root_l", "root -> l")
        p.copy("l.total", "l.n")          # visit1 result feeds visit2
        p.copy("l.bias", "l.scaled")      # visit2 result feeds visit3
        p.copy("root.out", "l.final")
        p = g.production("l_more", "l -> l0 A")
        p.rule("l0.n", "l1.n", fn=lambda n: n + 1)
        p.copy("l1.total", "l0.total")
        p.rule("l0.scaled", "l1.scaled", "l0.total",
               fn=lambda s, t: s + t)
        p.copy("l1.bias", "l0.bias")
        p.rule("l0.final", "l1.final", "l0.bias",
               fn=lambda f, b: f + b)
        p = g.production("l_one", "l -> A")
        p.const("l.n", 1)
        p.rule("l.scaled", "l.total", fn=lambda t: t)
        p.rule("l.final", "l.bias", fn=lambda b: b)
        compiled = g.finish()

        assert compiled.analyze().visits["l"] == 3
        assert compiled.statistics().max_visits == 3

        tokens = [Token("A", "a")] * 3
        dyn = compiled.run(tokens)
        tree = compiled.parse(tokens)
        stat = StaticEvaluator(compiled).goal_attributes(tree)
        assert dyn == stat
        # n=3; scaled = 3*total summed = 9; bias = 9; final = 27.
        assert dyn["out"] == 27
