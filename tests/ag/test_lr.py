"""Tests for the LALR(1) generator: FIRST sets, automaton, tables,
conflicts, precedence, and the parser driver."""

import pytest

from repro.ag import ConflictError, ParseError, Token
from repro.ag.grammar import Grammar
from repro.ag.lr import build_tables, Parser
from repro.ag.lr.grammar_ops import compute_first, compute_nullable
from repro.ag.lr.items import LR0Automaton


def toks(*kinds):
    return [Token(k, k.lower()) for k in kinds]


def expr_grammar():
    g = Grammar("expr")
    for t in ("PLUS", "TIMES", "LP", "RP", "ID"):
        g.terminal(t)
    g.add_production("e_add", "E", ["E", "PLUS", "T"])
    g.add_production("e_t", "E", ["T"])
    g.add_production("t_mul", "T", ["T", "TIMES", "F"])
    g.add_production("t_f", "T", ["F"])
    g.add_production("f_paren", "F", ["LP", "E", "RP"])
    g.add_production("f_id", "F", ["ID"])
    return g


class TestGrammarOps:
    def test_nullable_empty_production(self):
        g = Grammar("g")
        g.terminal("A")
        g.add_production("x_eps", "X", [])
        g.add_production("y_x", "Y", ["X", "X"])
        g.add_production("z", "Z", ["A", "X"])
        nullable = compute_nullable(g)
        names = {s.name for s in nullable}
        assert names == {"X", "Y"}

    def test_first_sets(self):
        g = expr_grammar()
        first = compute_first(g)
        e_first = {s.name for s in first[g.symbol("E")]}
        assert e_first == {"LP", "ID"}

    def test_first_through_nullable(self):
        g = Grammar("g")
        g.terminal("A")
        g.terminal("B")
        g.add_production("x_eps", "X", [])
        g.add_production("x_a", "X", ["A"])
        g.add_production("y", "Y", ["X", "B"])
        first = compute_first(g)
        y_first = {s.name for s in first[g.symbol("Y")]}
        assert y_first == {"A", "B"}


class TestAutomaton:
    def test_state_count_is_stable(self):
        a1 = LR0Automaton(expr_grammar())
        a2 = LR0Automaton(expr_grammar())
        assert len(a1) == len(a2)
        assert len(a1) > 5

    def test_start_state_closure_contains_all_e_productions(self):
        g = expr_grammar()
        auto = LR0Automaton(g)
        closure = auto.closure(auto.states[0])
        labels = {g.productions[i].label for i, dot in closure if dot == 0}
        assert {"e_add", "e_t", "t_mul", "t_f", "f_paren", "f_id"} <= labels


class TestTables:
    def test_unambiguous_grammar_builds_cleanly(self):
        tables = build_tables(expr_grammar())
        assert tables.conflicts == []

    def test_parse_respects_precedence_structure(self):
        tables = build_tables(expr_grammar())
        parser = Parser(tables)
        tree = parser.parse(toks("ID", "PLUS", "ID", "TIMES", "ID"))
        # Tree must be (E + (T * F)): the top production is e_add.
        assert tree.production.label == "e_add"
        rhs_term = tree.children[2]
        assert rhs_term.production.label == "t_mul"

    def test_ambiguous_grammar_raises_conflict_error(self):
        g = Grammar("amb")
        g.terminal("PLUS")
        g.terminal("ID")
        g.add_production("e_add", "E", ["E", "PLUS", "E"])
        g.add_production("e_id", "E", ["ID"])
        with pytest.raises(ConflictError) as info:
            build_tables(g)
        assert info.value.conflicts

    def test_allow_conflicts_applies_yacc_defaults(self):
        g = Grammar("amb")
        g.terminal("PLUS")
        g.terminal("ID")
        g.add_production("e_add", "E", ["E", "PLUS", "E"])
        g.add_production("e_id", "E", ["ID"])
        tables = build_tables(g, allow_conflicts=True)
        assert any(c.kind == "shift/reduce" for c in tables.conflicts)
        # Default resolution prefers shift: a+b+c parses right-associated.
        tree = Parser(tables).parse(toks("ID", "PLUS", "ID", "PLUS", "ID"))
        assert tree.children[0].production.label == "e_id"

    def test_precedence_resolves_dangling_operator(self):
        g = Grammar("prec")
        g.terminal("PLUS")
        g.terminal("TIMES")
        g.terminal("ID")
        g.set_precedence("left", "PLUS")
        g.set_precedence("left", "TIMES")
        g.add_production("e_add", "E", ["E", "PLUS", "E"])
        g.add_production("e_mul", "E", ["E", "TIMES", "E"])
        g.add_production("e_id", "E", ["ID"])
        tables = build_tables(g)
        assert all(c.resolution == "precedence" for c in tables.conflicts)
        tree = Parser(tables).parse(toks("ID", "PLUS", "ID", "TIMES", "ID"))
        assert tree.production.label == "e_add"
        # Left associativity: a+b+c groups to the left.
        tree = Parser(tables).parse(toks("ID", "PLUS", "ID", "PLUS", "ID"))
        assert tree.children[0].production.label == "e_add"


class TestParser:
    def test_parse_error_lists_expectations(self):
        parser = Parser(build_tables(expr_grammar()))
        with pytest.raises(ParseError) as info:
            parser.parse(toks("ID", "PLUS", "PLUS"))
        assert "PLUS" in str(info.value) or "expected" in str(info.value)

    def test_parse_error_on_truncated_input(self):
        parser = Parser(build_tables(expr_grammar()))
        with pytest.raises(ParseError):
            parser.parse(toks("LP", "ID"))

    def test_empty_production_builds_empty_node(self):
        g = Grammar("opt")
        g.terminal("A")
        g.add_production("s", "S", ["X", "A"])
        g.add_production("x_eps", "X", [])
        parser = Parser(build_tables(g))
        tree = parser.parse(toks("A"))
        assert tree.children[0].production.label == "x_eps"
        assert tree.children[0].children == []

    def test_tree_parent_links(self):
        parser = Parser(build_tables(expr_grammar()))
        tree = parser.parse(toks("ID", "PLUS", "ID"))
        child = tree.children[0]
        assert child.parent is tree
        assert child.child_index == 1

    def test_tree_line_numbers(self):
        parser = Parser(build_tables(expr_grammar()))
        tokens = [
            Token("ID", "a", line=3),
            Token("PLUS", "+", line=4),
            Token("ID", "b", line=4),
        ]
        tree = parser.parse(tokens)
        assert tree.line == 3

    def test_deep_left_recursion(self):
        # 2000 additions: the driver must be iterative.
        tokens = toks("ID")
        for _ in range(2000):
            tokens += toks("PLUS", "ID")
        parser = Parser(build_tables(expr_grammar()))
        tree = parser.parse(tokens)
        assert tree.production.label == "e_add"

    def test_count_nodes(self):
        parser = Parser(build_tables(expr_grammar()))
        tree = parser.parse(toks("ID", "PLUS", "ID"))
        # e_add, e_t? no: E -> E + T with E -> T -> F -> ID on left.
        assert tree.count_nodes() == 6
