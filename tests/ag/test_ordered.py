"""Tests for dependency analysis, OAG partitioning, and statistics."""

import pytest

from repro.ag import AGSpec, SYN, INH, Token, format_table
from repro.ag.dependency import DependencyAnalysis

from .calc_fixture import make_compiled


class TestDependencyAnalysis:
    def test_calc_is_noncircular(self):
        compiled = make_compiled()
        DependencyAnalysis(compiled).check_noncircular()

    def test_symbol_graph_projects_transitive_dependencies(self):
        g = AGSpec("proj")
        g.terminals("A")
        g.nonterminal("s", ("out", SYN))
        g.nonterminal("t", ("i", INH), ("o", SYN))
        p = g.production("s_t", "s -> t")
        p.const("t.i", 1)
        p.copy("s.out", "t.o")
        p = g.production("t_a", "t -> A")
        p.copy("t.o", "t.i")
        compiled = g.finish()
        dep = DependencyAnalysis(compiled)
        graph = dep.symbol_graph("t")
        assert "o" in graph["i"]


class TestPartitions:
    def test_one_visit_for_s_attributed(self):
        compiled = make_compiled()
        analysis = compiled.analyze()
        assert analysis.visits["expr"] == 1
        assert analysis.max_visits == 1

    def test_partition_kinds_alternate(self):
        compiled = make_compiled()
        for sym, parts in compiled.analyze().partitions.items():
            kinds = [k for k, _ in parts]
            assert kinds[0] == INH
            assert kinds[-1] == SYN
            for a, b in zip(kinds, kinds[1:]):
                assert a != b

    def test_every_attribute_assigned_exactly_once(self):
        compiled = make_compiled()
        analysis = compiled.analyze()
        for sym in compiled.grammar.nonterminals:
            if sym.name == "$start":
                continue
            declared = set(compiled.attr_table.of(sym))
            assigned = set(analysis.attr_visit[sym.name])
            assert declared == assigned


class TestPlans:
    def test_plans_cover_every_rule_exactly_once(self):
        compiled = make_compiled()
        analysis = compiled.analyze()
        for prod in compiled.grammar.productions:
            if prod.label == "$accept":
                continue
            rules = set(compiled.rules_of(prod).values())
            planned = [
                action.rule
                for plan in analysis.plans[prod.index]
                for action in plan
                if action.op == "eval"
            ]
            assert set(planned) == rules
            assert len(planned) == len(rules)

    def test_child_visits_in_order(self):
        compiled = make_compiled()
        analysis = compiled.analyze()
        for prod in compiled.grammar.productions:
            if prod.label == "$accept":
                continue
            seen = {}
            for plan in analysis.plans[prod.index]:
                for action in plan:
                    if action.op == "visit":
                        prev = seen.get(action.child_pos, 0)
                        assert action.visit == prev + 1
                        seen[action.child_pos] = action.visit


class TestStatistics:
    def test_calc_statistics_shape(self):
        stats = make_compiled().statistics()
        d = stats.as_dict()
        assert d["productions"] == 8
        assert d["symbols"] == 10  # 7 terminals + 3 nonterminals
        assert d["attributes"] == 9
        assert d["rules"] == d["implicit_rules"] + 8 + 2  # 10 explicit
        assert d["max_visits"] == 1

    def test_implicit_fraction(self):
        stats = make_compiled().statistics()
        assert 0 < stats.implicit_fraction < 1

    def test_format_table_two_columns(self):
        s = make_compiled().statistics()
        table = format_table([s, s])
        assert "productions" in table
        assert table.count("calc") == 2

    def test_visits_paper_convention(self):
        # "Most symbols are only visited once" — for an S-attributed
        # grammar every symbol is single-visit.
        compiled = make_compiled()
        assert all(
            v == 1 for v in compiled.analyze().visits.values()
        )
