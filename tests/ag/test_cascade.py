"""Tests for cascaded evaluation (§4.1).

The scenario mirrors the paper's: a *principal* AG that resolves
identifiers through its symbol table and emits a flat token list whose
token kinds depend on what names denote, and a *sub* AG that re-parses
that list.  ``X ( Y )`` parses as a call when X is a function and as an
array index when X is an array — two different phrase structures for
identical source text.
"""

import pytest

from repro.ag import AGSpec, ParseError, SubEvaluator, SYN, INH, Token


def make_expression_ag():
    """The sub-grammar: distinct FUNC/ARR tokens drive phrase structure."""
    g = AGSpec("sub_expr")
    g.terminals("FUNC", "ARR", "NUM", "LP", "RP")
    g.nonterminal("e", ("shape", SYN), ("val", SYN))
    g.nonterminal("arg", ("shape", SYN), ("val", SYN))
    p = g.production("e_call", "e -> FUNC LP arg RP")
    p.rule("e.shape", "arg.shape", fn=lambda s: "call(%s)" % s)
    p.rule("e.val", "FUNC.value", "arg.val", fn=lambda f, v: f(v))
    p = g.production("e_index", "e -> ARR LP arg RP")
    p.rule("e.shape", "arg.shape", fn=lambda s: "index(%s)" % s)
    p.rule("e.val", "ARR.value", "arg.val", fn=lambda a, i: a[i])
    p = g.production("e_num", "e -> NUM")
    p.const("e.shape", "num")
    p.rule("e.val", "NUM.value", fn=lambda v: v)
    p = g.production("arg_e", "arg -> e")
    p.copy("arg.shape", "e.shape")
    p.copy("arg.val", "e.val")
    return g.finish()


@pytest.fixture(scope="module")
def sub():
    return SubEvaluator(make_expression_ag())


def classify(name, env):
    """The principal AG's ENV lookup: same source text, different token."""
    obj = env[name]
    kind = "FUNC" if callable(obj) else "ARR"
    return Token(kind, name, obj)


class TestSubEvaluator:
    def test_function_denotation_parses_as_call(self, sub):
        env = {"x": lambda v: v + 1}
        lef = [classify("x", env), Token("LP", "("),
               Token("NUM", "5", 5), Token("RP", ")")]
        out = sub(lef)
        assert out["shape"] == "call(num)"
        assert out["val"] == 6

    def test_array_denotation_parses_as_index(self, sub):
        env = {"x": [10, 20, 30]}
        lef = [classify("x", env), Token("LP", "("),
               Token("NUM", "2", 2), Token("RP", ")")]
        out = sub(lef)
        assert out["shape"] == "index(num)"
        assert out["val"] == 30

    def test_identical_source_different_phrase_structure(self, sub):
        """The paper's headline example: X ( Y ) twice, two trees."""
        as_call = sub([classify("x", {"x": abs}), Token("LP", "("),
                       Token("NUM", "7", -7), Token("RP", ")")])
        as_index = sub([classify("x", {"x": {-7: "neg"}}), Token("LP", "("),
                        Token("NUM", "7", -7), Token("RP", ")")])
        assert as_call["shape"].startswith("call")
        assert as_index["shape"].startswith("index")

    def test_nested_cascade_token_values(self, sub):
        env = {"f": lambda v: v * 2, "a": [1, 2, 3]}
        lef = [
            classify("f", env), Token("LP", "("),
            classify("a", env), Token("LP", "("),
            Token("NUM", "1", 1), Token("RP", ")"), Token("RP", ")"),
        ]
        out = sub(lef)
        assert out["val"] == 4

    def test_invocation_counter(self):
        sub = SubEvaluator(make_expression_ag())
        sub([Token("NUM", "1", 1)])
        sub([Token("NUM", "2", 2)])
        assert sub.invocations == 2

    def test_parse_error_propagates(self, sub):
        with pytest.raises(ParseError):
            sub([Token("LP", "(")])

    def test_try_call_maps_errors(self, sub):
        result = sub.try_call(
            [Token("LP", "(")],
            on_error=lambda exc: {"shape": "error", "val": None,
                                  "msg": str(exc)},
        )
        assert result["shape"] == "error"
        assert "unexpected" in result["msg"]

    def test_goal_restriction(self):
        sub = SubEvaluator(make_expression_ag(), goals=["val"])
        out = sub([Token("NUM", "9", 9)])
        assert out == {"val": 9}


class TestCascadeFromPrincipalRules:
    """Drive the sub-evaluator from semantic rules of a principal AG,
    exactly as the VHDL AG calls exprEval."""

    def make_principal(self, sub):
        g = AGSpec("principal")
        g.terminals("NAME", "NUM", "LP", "RP", "SEMI")
        g.attr_class("env", INH)
        g.nonterminal("prog", ("results", SYN), "env")
        g.nonterminal("stmt", ("result", SYN), "env")
        g.nonterminal("lef", ("toks", SYN), "env")

        p = g.production("prog_one", "prog -> stmt SEMI")
        p.rule("prog.results", "stmt.result", fn=lambda r: [r])
        p = g.production("prog_more", "prog -> prog0 stmt SEMI")
        p.rule("prog0.results", "prog1.results", "stmt.result",
               fn=lambda rs, r: rs + [r])
        p = g.production("stmt_expr", "stmt -> lef")
        p.rule("stmt.result", "lef.toks", fn=lambda toks: sub(toks)["val"])
        p = g.production("lef_name", "lef -> lef0 NAME")
        p.rule("lef0.toks", "lef1.toks", "NAME.text", "lef0.env",
               fn=lambda ts, n, env: ts + [classify(n, env)])
        p = g.production("lef_num", "lef -> lef0 NUM")
        p.rule("lef0.toks", "lef1.toks", "NUM.value",
               fn=lambda ts, v: ts + [Token("NUM", str(v), v)])
        p = g.production("lef_lp", "lef -> lef0 LP")
        p.rule("lef0.toks", "lef1.toks", fn=lambda ts: ts + [Token("LP", "(")])
        p = g.production("lef_rp", "lef -> lef0 RP")
        p.rule("lef0.toks", "lef1.toks", fn=lambda ts: ts + [Token("RP", ")")])
        p = g.production("lef_empty", "lef ->")
        p.rule("lef.toks", fn=list)
        return g.finish()

    def test_two_statements_two_denotations(self):
        sub = SubEvaluator(make_expression_ag())
        principal = self.make_principal(sub)
        env = {"x": lambda v: v + 100, "y": [0, 5]}

        def t(kind, text, value=None):
            return Token(kind, text, value)

        tokens = [
            t("NAME", "x"), t("LP", "("), t("NUM", "1", 1), t("RP", ")"),
            t("SEMI", ";"),
            t("NAME", "y"), t("LP", "("), t("NUM", "1", 1), t("RP", ")"),
            t("SEMI", ";"),
        ]
        out = principal.run(tokens, inherited={"env": env})
        assert out["results"] == [101, 5]
        assert sub.invocations == 2
