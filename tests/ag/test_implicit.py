"""Tests for attribute classes, implicit rules, and attribute groups."""

import pytest

from repro.ag import AGSpec, AttributeError_, SYN, INH, Token


def concat(a, b):
    return a + b


class TestImplicitRules:
    def make(self):
        g = AGSpec("imp")
        g.terminals("A", "B")
        g.attr_class("MSGS", SYN, merge=concat, unit=())
        g.attr_class("LEVEL", INH)
        g.nonterminal("s", "MSGS", "LEVEL")
        g.nonterminal("x", "MSGS", "LEVEL")
        g.nonterminal("y", "MSGS", "LEVEL")
        return g

    def test_merge_rule_combines_children_left_to_right(self):
        g = self.make()
        g.production("s_xy", "s -> x y")
        p = g.production("x_a", "x -> A")
        p.rule("x.MSGS", "x.LEVEL", fn=lambda lv: ("x%d" % lv,))
        p = g.production("y_b", "y -> B")
        p.rule("y.MSGS", "y.LEVEL", fn=lambda lv: ("y%d" % lv,))
        compiled = g.finish()
        out = compiled.run(
            [Token("A", "a"), Token("B", "b")], inherited={"LEVEL": 3}
        )
        assert out["MSGS"] == ("x3", "y3")

    def test_copy_rule_for_single_occurrence(self):
        g = self.make()
        g.production("s_x", "s -> x")
        p = g.production("x_a", "x -> A")
        p.const("x.MSGS", ("m",))
        compiled = g.finish()
        out = compiled.run([Token("A", "a")], inherited={"LEVEL": 0})
        assert out["MSGS"] == ("m",)
        # Single-occurrence completion is a copy, not a merge.
        rules = compiled.rules_of(compiled.grammar.production("s_x"))
        assert rules[(0, "MSGS")].implicit == "copy"

    def test_unit_rule_when_no_occurrence(self):
        g = self.make()
        g.production("s_a", "s -> A")
        compiled = g.finish()
        out = compiled.run([Token("A", "a")])
        assert out["MSGS"] == ()
        rules = compiled.rules_of(compiled.grammar.production("s_a"))
        assert rules[(0, "MSGS")].implicit == "unit"

    def test_inherited_copy_rule_from_lhs(self):
        g = self.make()
        g.production("s_x", "s -> x")
        p = g.production("x_a", "x -> A")
        p.rule("x.MSGS", "x.LEVEL", fn=lambda lv: (lv,))
        compiled = g.finish()
        out = compiled.run([Token("A", "a")], inherited={"LEVEL": 9})
        assert out["MSGS"] == (9,)
        rules = compiled.rules_of(compiled.grammar.production("s_x"))
        assert rules[(1, "LEVEL")].implicit == "copy"

    def test_inherited_without_lhs_source_is_an_error(self):
        g = AGSpec("no_src")
        g.terminals("A")
        g.attr_class("LEVEL", INH)
        g.nonterminal("s")  # s has no LEVEL to copy from
        g.nonterminal("x", "LEVEL")
        g.production("s_x", "s -> x")
        g.production("x_a", "x -> A")
        with pytest.raises(AttributeError_) as info:
            g.finish()
        assert "LEVEL" in str(info.value)

    def test_explicit_rule_suppresses_implicit(self):
        g = self.make()
        p = g.production("s_xy", "s -> x y")
        p.const("s.MSGS", ("explicit",))
        p = g.production("x_a", "x -> A")
        p.const("x.MSGS", ("x",))
        p = g.production("y_b", "y -> B")
        p.const("y.MSGS", ("y",))
        compiled = g.finish()
        out = compiled.run(
            [Token("A", "a"), Token("B", "b")], inherited={"LEVEL": 0}
        )
        assert out["MSGS"] == ("explicit",)

    def test_plain_attribute_missing_rule_is_an_error(self):
        g = AGSpec("p")
        g.terminals("A")
        g.nonterminal("s", ("v", SYN))
        g.production("s_a", "s -> A")
        with pytest.raises(AttributeError_) as info:
            g.finish()
        assert "not in any attribute class" in str(info.value)

    def test_duplicate_rule_is_an_error(self):
        g = AGSpec("d")
        g.terminals("A")
        g.nonterminal("s", ("v", SYN))
        p = g.production("s_a", "s -> A")
        p.const("s.v", 1)
        p.const("s.v", 2)
        with pytest.raises(AttributeError_) as info:
            g.finish()
        assert "twice" in str(info.value)

    def test_merge_required_for_multiple_occurrences(self):
        g = AGSpec("m")
        g.terminals("A")
        g.attr_class("C", SYN, unit=0, merge=None)
        g.nonterminal("s", "C")
        g.nonterminal("x", "C")
        g.production("s_xx", "s -> x x")
        p = g.production("x_a", "x -> A")
        p.const("x.C", 1)
        with pytest.raises(AttributeError_) as info:
            g.finish()
        assert "merge" in str(info.value)

    def test_implicit_rule_counts(self):
        g = self.make()
        g.production("s_xy", "s -> x y")
        p = g.production("x_a", "x -> A")
        p.rule("x.MSGS", fn=tuple)
        p = g.production("y_b", "y -> B")
        p.rule("y.MSGS", fn=tuple)
        compiled = g.finish()
        # Explicit: 2 (the two leaf MSGS). Implicit: s.MSGS merge,
        # x.LEVEL + y.LEVEL copies = 3.
        assert compiled.n_explicit_rules == 2
        assert compiled.n_implicit_rules == 3


class TestAttributeClassValidation:
    def test_inherited_class_rejects_merge(self):
        g = AGSpec("v")
        with pytest.raises(AttributeError_):
            g.attr_class("BAD", INH, merge=concat)

    def test_bad_kind_rejected(self):
        g = AGSpec("v")
        with pytest.raises(AttributeError_):
            g.attr_class("BAD", "sideways")

    def test_duplicate_class_rejected(self):
        g = AGSpec("v")
        g.attr_class("C", SYN, unit=0)
        with pytest.raises(AttributeError_):
            g.attr_class("C", SYN, unit=0)

    def test_callable_unit_makes_fresh_values(self):
        g = AGSpec("u")
        g.terminals("A")
        g.attr_class("ACC", SYN, merge=concat, unit=list)
        g.nonterminal("s", "ACC")
        g.production("s_a", "s -> A")
        compiled = g.finish()
        out1 = compiled.run([Token("A", "a")])
        out2 = compiled.run([Token("A", "a")])
        assert out1["ACC"] == [] and out2["ACC"] == []
        assert out1["ACC"] is not out2["ACC"]


class TestAttributeGroups:
    def test_group_expansion(self):
        g = AGSpec("grp")
        g.terminals("A")
        g.attr_class("MSGS", SYN, merge=concat, unit=())
        g.attr_class("ENV", INH)
        g.attr_group("BASE", "MSGS", "ENV")
        g.attr_group("STMT", "BASE", ("CODE", SYN))
        sym = g.nonterminal("stmt", "STMT")
        decls = g.attr_table.of(sym)
        assert set(decls) == {"MSGS", "ENV", "CODE"}
        assert decls["CODE"].kind == SYN
        assert decls["ENV"].cls is g.classes["ENV"]

    def test_unknown_group_member_rejected(self):
        g = AGSpec("grp")
        with pytest.raises(AttributeError_):
            g.attr_group("BAD", "NOPE")
            g.nonterminal("x", "BAD")

    def test_nested_groups(self):
        g = AGSpec("grp")
        g.attr_class("A1", SYN, unit=0)
        g.attr_group("G1", "A1")
        g.attr_group("G2", "G1", ("b", INH))
        g.attr_group("G3", "G2", ("c", SYN))
        sym = g.nonterminal("n", "G3")
        assert set(g.attr_table.of(sym)) == {"A1", "b", "c"}
