"""Tests for generated-evaluator emission (the Figure 2 'generated'
artifact)."""

from repro.ag.emit import emit_evaluator_source, load_tables

from .calc_fixture import make_compiled


class TestEmission:
    def test_emitted_module_loads(self):
        compiled = make_compiled()
        ns = load_tables(emit_evaluator_source(compiled))
        assert ns["GRAMMAR_NAME"] == "calc"

    def test_tables_match_in_memory(self):
        compiled = make_compiled()
        ns = load_tables(emit_evaluator_source(compiled))
        assert len(ns["ACTION"]) == compiled.tables.n_states
        assert len(ns["GOTO"]) == compiled.tables.n_states
        for emitted, live in zip(ns["ACTION"], compiled.tables.action):
            assert emitted == live

    def test_productions_and_attributes_listed(self):
        compiled = make_compiled()
        ns = load_tables(emit_evaluator_source(compiled))
        labels = [label for label, _, _ in ns["PRODUCTIONS"]]
        assert "e_add" in labels
        attrs = {(sym, attr) for sym, attr, _ in ns["ATTRIBUTES"]}
        assert ("expr", "val") in attrs
        assert ("expr", "env") in attrs

    def test_rules_record_implicit_kind(self):
        compiled = make_compiled()
        ns = load_tables(emit_evaluator_source(compiled))
        rules = dict(ns["RULES"])
        kinds = {entry[1] for entry in rules["e_term"]}
        assert "copy" in kinds  # NODES/env implicit copies

    def test_visit_sequences_present_for_ordered_grammar(self):
        compiled = make_compiled()
        ns = load_tables(emit_evaluator_source(compiled))
        plans = dict(ns["VISIT_SEQUENCES"])
        assert "e_add" in plans
        # Single-visit grammar: one plan per production.
        assert len(plans["e_add"]) == 1
        ops = {action[0] for action in plans["e_add"][0]}
        assert ops <= {"eval", "visit"}

    def test_emission_deterministic(self):
        a = emit_evaluator_source(make_compiled())
        b = emit_evaluator_source(make_compiled())
        assert a == b

    def test_vhdl_grammar_emits(self):
        from repro.vhdl.grammar import principal_grammar

        src = emit_evaluator_source(principal_grammar())
        ns = load_tables(src)
        assert len(ns["ACTION"]) > 400
        assert len(src.splitlines()) > 1500
