"""Circularity analysis: the conservative (absolutely-noncircular)
test versus Knuth's exact test."""

import pytest

from repro.ag import AGSpec, CircularityError, SYN, INH, Token
from repro.ag.dependency import DependencyAnalysis, knuth_circularity_test


def truly_circular():
    """up depends on down depends on up — circular in every tree."""
    g = AGSpec("circ")
    g.terminals("A")
    g.nonterminal("s", ("x", SYN))
    g.nonterminal("t", ("down", INH), ("up", SYN))
    p = g.production("s_t", "s -> t")
    p.copy("s.x", "t.up")
    p.copy("t.down", "t.up")
    p = g.production("t_a", "t -> A")
    p.copy("t.up", "t.down")
    return g.finish()


def only_union_circular():
    """Knuth's classic shape: two productions for ``t`` each create
    one direction of dependency (up1<-down1 or up2<-down2), and the
    parent uses them crosswise.  The *union* of the two projections
    has a cycle, but no single tree does."""
    g = AGSpec("safe")
    g.terminals("A", "B")
    g.nonterminal("s", ("x", SYN))
    g.nonterminal(
        "t", ("d1", INH), ("d2", INH), ("u1", SYN), ("u2", SYN))
    p = g.production("s_t", "s -> t")
    # crosswise feeding: d1 from u2, d2 from u1.
    p.copy("t.d1", "t.u2")
    p.copy("t.d2", "t.u1")
    p.rule("s.x", "t.u1", "t.u2", fn=lambda a, b: (a, b))
    p = g.production("t_a", "t -> A")
    p.copy("t.u1", "t.d1")       # only u1 <- d1
    p.const("t.u2", 0)
    p = g.production("t_b", "t -> B")
    p.copy("t.u2", "t.d2")       # only u2 <- d2
    p.const("t.u1", 0)
    return g.finish()


class TestConservativeTest:
    def test_accepts_noncircular(self):
        from .calc_fixture import make_compiled

        DependencyAnalysis(make_compiled()).check_noncircular()

    def test_rejects_truly_circular(self):
        with pytest.raises(CircularityError):
            DependencyAnalysis(truly_circular()).check_noncircular()

    def test_conservatively_rejects_union_circular(self):
        """The union-based test cannot tell the safe grammar apart —
        the imprecision §5.2's diagnosis pain stems from."""
        with pytest.raises(CircularityError):
            DependencyAnalysis(
                only_union_circular()).check_noncircular()


class TestDeterministicCycleReport:
    def test_find_cycle_is_order_independent(self):
        """The reported cycle must be a function of the *graph*, not
        of dict insertion order: every insertion permutation of the
        same two-cycle graph yields the identical cycle."""
        from itertools import permutations

        from repro.ag.dependency import _find_cycle

        edges = {
            (0, "a"): {(1, "b")},
            (1, "b"): {(0, "a")},
            (2, "c"): {(0, "a"), (1, "b")},
            (3, "d"): set(),
        }
        reports = set()
        for perm in permutations(edges):
            graph = {node: set(edges[node]) for node in perm}
            cycle = _find_cycle(graph)
            assert cycle is not None
            reports.add(tuple(cycle))
        assert len(reports) == 1
        # Sorted-root traversal enters the cycle at its smallest node.
        assert reports.pop()[0] == (0, "a")

    def test_circularity_error_message_is_stable(self):
        """Ten fresh builds of the same circular grammar report the
        same cycle text (the diagnostic the §5.2 workflow keys on)."""
        messages = set()
        for _ in range(10):
            with pytest.raises(CircularityError) as err:
                DependencyAnalysis(
                    truly_circular()).check_noncircular()
            messages.add(str(err.value))
        assert len(messages) == 1


class TestKnuthExactTest:
    def test_accepts_noncircular(self):
        from .calc_fixture import make_compiled

        assert knuth_circularity_test(make_compiled()) is None

    def test_rejects_truly_circular(self):
        result = knuth_circularity_test(truly_circular())
        assert result is not None
        prod, cycle = result
        assert cycle

    def test_accepts_union_circular_but_tree_safe(self):
        """The exact test distinguishes what the conservative one
        cannot: no derivation tree of this grammar is circular."""
        assert knuth_circularity_test(only_union_circular()) is None

    def test_safe_grammar_actually_evaluates(self):
        """Proof by execution: the dynamic evaluator computes the
        'union-circular' grammar on both derivation trees."""
        compiled = only_union_circular()
        out_a = compiled.run([Token("A", "a")])
        out_b = compiled.run([Token("B", "b")])
        assert out_a["x"] == (0, 0)
        assert out_b["x"] == (0, 0)

    def test_vhdl_grammars_pass_exact_test(self):
        from repro.vhdl.expr_grammar import expr_grammar

        assert knuth_circularity_test(expr_grammar()) is None
