"""Tests for the scanner generator."""

import pytest

from repro.ag import LexError, LexerSpec, ListScanner, Token


def simple_lexer():
    lex = LexerSpec("t")
    lex.skip(r"\s+")
    lex.skip(r"--[^\n]*")
    lex.token("NUM", r"\d+", action=int)
    lex.token("ID", r"[A-Za-z_][A-Za-z0-9_]*")
    lex.token("ARROW", r"=>")
    lex.token("EQ", r"=")
    lex.keywords("ID", ["if", "then"], case_insensitive=True)
    return lex.build()


class TestScanning:
    def test_basic_kinds_and_values(self):
        toks = simple_lexer().scan("abc 42 =>")
        assert [t.kind for t in toks] == ["ID", "NUM", "ARROW"]
        assert toks[1].value == 42
        assert toks[0].value == "abc"

    def test_longest_literal_declared_first_wins(self):
        toks = simple_lexer().scan("= =>")
        assert [t.kind for t in toks] == ["EQ", "ARROW"]

    def test_line_and_column_tracking(self):
        toks = simple_lexer().scan("a\n  b\nc")
        assert [(t.line, t.column) for t in toks] == [(1, 1), (2, 3), (3, 1)]

    def test_comments_skipped_and_lines_counted(self):
        toks = simple_lexer().scan("a -- comment\nb")
        assert [t.text for t in toks] == ["a", "b"]
        assert toks[1].line == 2

    def test_keywords_case_insensitive(self):
        toks = simple_lexer().scan("IF x Then")
        assert [t.kind for t in toks] == ["kw_if", "ID", "kw_then"]

    def test_keyword_text_preserved(self):
        toks = simple_lexer().scan("IF")
        assert toks[0].text == "IF"

    def test_lex_error_reports_position(self):
        with pytest.raises(LexError) as info:
            simple_lexer().scan("ab\n  $")
        assert info.value.line == 2

    def test_empty_input(self):
        assert simple_lexer().scan("") == []

    def test_token_kinds_listing(self):
        lex = LexerSpec("t")
        lex.token("ID", r"[a-z]+")
        lex.keywords("ID", ["end"])
        assert "kw_end" in lex.token_kinds()
        assert "ID" in lex.token_kinds()


class TestListScanner:
    def test_pops_front_in_order(self):
        toks = [Token("A", "a"), Token("B", "b")]
        assert list(ListScanner(toks)) == toks

    def test_empty(self):
        assert list(ListScanner([])) == []

    def test_source_list_not_consumed(self):
        toks = [Token("A", "a")]
        scanner = ListScanner(toks)
        list(scanner)
        assert len(toks) == 1


class TestToken:
    def test_value_defaults_to_text(self):
        assert Token("X", "xyz").value == "xyz"

    def test_equality_ignores_position(self):
        assert Token("X", "a", line=1) == Token("X", "a", line=9)

    def test_inequality_on_kind(self):
        assert Token("X", "a") != Token("Y", "a")
