"""A small arithmetic attribute grammar shared by the ag test modules.

The grammar exercises every toolkit feature the VHDL AGs rely on:
plain attributes, an inherited attribute class (copy rules), a
synthesized class with merge-function and unit-element, lexical token
attributes, and occurrence indexing (``expr0``/``expr1``).
"""

from repro.ag import AGSpec, LexerSpec, SYN, INH


def make_lexer():
    lex = LexerSpec("calc")
    lex.skip(r"\s+")
    lex.token("NUM", r"\d+", action=int)
    lex.token("ID", r"[a-z]+")
    lex.token("PLUS", r"\+")
    lex.token("MINUS", r"-")
    lex.token("TIMES", r"\*")
    lex.token("LP", r"\(")
    lex.token("RP", r"\)")
    return lex.build()


def make_spec():
    g = AGSpec("calc")
    g.terminals("NUM", "ID", "PLUS", "MINUS", "TIMES", "LP", "RP")
    g.attr_class("NODES", SYN, merge=lambda a, b: a + b, unit=0)
    g.attr_class("env", INH)
    for nt in ("expr", "term", "factor"):
        g.nonterminal(nt, ("val", SYN), "NODES", "env")

    p = g.production("e_add", "expr -> expr0 PLUS term")
    p.rule("expr0.val", "expr1.val", "term.val", fn=lambda a, b: a + b)
    p = g.production("e_sub", "expr -> expr0 MINUS term")
    p.rule("expr0.val", "expr1.val", "term.val", fn=lambda a, b: a - b)
    p = g.production("e_term", "expr -> term")
    p.copy("expr.val", "term.val")
    p = g.production("t_mul", "term -> term0 TIMES factor")
    p.rule("term0.val", "term1.val", "factor.val", fn=lambda a, b: a * b)
    p = g.production("t_fac", "term -> factor")
    p.copy("term.val", "factor.val")
    p = g.production("f_num", "factor -> NUM")
    p.rule("factor.val", "NUM.value", fn=lambda v: v)
    p.const("factor.NODES", 1)
    p = g.production("f_id", "factor -> ID")
    p.rule("factor.val", "ID.text", "factor.env",
           fn=lambda name, env: env[name])
    p.const("factor.NODES", 1)
    p = g.production("f_paren", "factor -> LP expr RP")
    p.copy("factor.val", "expr.val")
    return g


def make_compiled():
    return make_spec().finish()
